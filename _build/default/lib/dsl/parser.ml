(* Recursive-descent parser for the DSL of Section II (Listing 1) plus the
   ARTEMIS extensions: [#assign] resource assignment inside stencil bodies
   and the [occupancy] pragma clause. *)

open Ast

exception Parse_error of string * int  (** message, line *)

type state = {
  mutable toks : (Lexer.token * int) list;
}

let peek st =
  match st.toks with
  | (t, _) :: _ -> t
  | [] -> Lexer.EOF

let line st =
  match st.toks with
  | (_, l) :: _ -> l
  | [] -> 0

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st msg = raise (Parse_error (msg, line st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st)))

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Lexer.token_to_string t))

let int_lit st =
  match peek st with
  | Lexer.INT n -> advance st; n
  | Lexer.MINUS ->
    advance st;
    (match peek st with
     | Lexer.INT n -> advance st; -n
     | t -> fail st (Printf.sprintf "expected integer, found %s" (Lexer.token_to_string t)))
  | t -> fail st (Printf.sprintf "expected integer, found %s" (Lexer.token_to_string t))

let number st =
  match peek st with
  | Lexer.INT n -> advance st; float_of_int n
  | Lexer.FLOAT f -> advance st; f
  | t -> fail st (Printf.sprintf "expected number, found %s" (Lexer.token_to_string t))

let comma_separated st parse_item =
  let rec more acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      more (parse_item st :: acc)
    end
    else List.rev acc
  in
  more [ parse_item st ]

(* ---------------- expressions ---------------- *)

let parse_index st =
  match peek st with
  | Lexer.INT _ | Lexer.MINUS -> { iter = None; shift = int_lit st }
  | Lexer.IDENT it ->
    advance st;
    (match peek st with
     | Lexer.PLUS -> advance st; { iter = Some it; shift = int_lit st }
     | Lexer.MINUS -> advance st; { iter = Some it; shift = -(int_lit st) }
     | _ -> { iter = Some it; shift = 0 })
  | t -> fail st (Printf.sprintf "expected array index, found %s" (Lexer.token_to_string t))

let rec parse_expr st = parse_additive st

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Bin (Add, lhs, parse_multiplicative st))
    | Lexer.MINUS -> advance st; loop (Bin (Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | Lexer.STAR -> advance st; loop (Bin (Mul, lhs, parse_unary st))
    | Lexer.SLASH -> advance st; loop (Bin (Div, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS -> (
    advance st;
    (* fold negated literals so printing and reparsing agree *)
    match parse_unary st with
    | Const f -> Const (-.f)
    | e -> Neg e)
  | Lexer.PLUS -> advance st; parse_unary st
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.INT n -> advance st; Const (float_of_int n)
  | Lexer.FLOAT f -> advance st; Const f
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name ->
    advance st;
    (match peek st with
     | Lexer.LBRACKET ->
       let rec indices acc =
         if peek st = Lexer.LBRACKET then begin
           advance st;
           let i = parse_index st in
           expect st Lexer.RBRACKET;
           indices (i :: acc)
         end
         else List.rev acc
       in
       Access (name, indices [])
     | Lexer.LPAREN ->
       advance st;
       if peek st = Lexer.RPAREN then begin
         advance st;
         Call (name, [])
       end
       else begin
         let args = comma_separated st parse_expr in
         expect st Lexer.RPAREN;
         Call (name, args)
       end
     | _ -> Scalar_ref name)
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Lexer.token_to_string t))

(* ---------------- statements ---------------- *)

let parse_stmt st =
  match peek st with
  | Lexer.KW_DOUBLE | Lexer.KW_FLOAT ->
    advance st;
    let name = ident st in
    expect st Lexer.EQ;
    let e = parse_expr st in
    expect st Lexer.SEMI;
    Decl_temp (name, e)
  | Lexer.IDENT name ->
    advance st;
    let rec indices acc =
      if peek st = Lexer.LBRACKET then begin
        advance st;
        let i = parse_index st in
        expect st Lexer.RBRACKET;
        indices (i :: acc)
      end
      else List.rev acc
    in
    let idx = indices [] in
    (match peek st with
     | Lexer.EQ ->
       advance st;
       let e = parse_expr st in
       expect st Lexer.SEMI;
       Assign (name, idx, e)
     | Lexer.PLUSEQ ->
       advance st;
       let e = parse_expr st in
       expect st Lexer.SEMI;
       Accum (name, idx, e)
     | t -> fail st (Printf.sprintf "expected '=' or '+=', found %s" (Lexer.token_to_string t)))
  | t -> fail st (Printf.sprintf "expected statement, found %s" (Lexer.token_to_string t))

(* ---------------- pragma ---------------- *)

let parse_pragma st =
  (* Clauses may appear in any order; they are plain identifiers. *)
  let p = ref empty_pragma in
  let rec clauses () =
    match peek st with
    | Lexer.IDENT "stream" ->
      advance st;
      let d = ident st in
      p := { !p with stream_dim = Some d };
      clauses ()
    | Lexer.IDENT "block" ->
      advance st;
      expect st Lexer.LPAREN;
      let dims = comma_separated st (fun st -> int_lit st) in
      expect st Lexer.RPAREN;
      p := { !p with block = Some dims };
      clauses ()
    | Lexer.IDENT "unroll" ->
      advance st;
      let it = ident st in
      expect st Lexer.EQ;
      let f = int_lit st in
      p := { !p with unroll = !p.unroll @ [ (it, f) ] };
      clauses ()
    | Lexer.IDENT "occupancy" ->
      advance st;
      let t = number st in
      p := { !p with occupancy = Some t };
      clauses ()
    | _ -> ()
  in
  clauses ();
  !p

(* ---------------- stencil definitions ---------------- *)

let placement_of_ident st = function
  | "shmem" -> Shmem
  | "gmem" -> Gmem
  | "regs" -> Regs
  | "cmem" -> Cmem
  | other -> fail st (Printf.sprintf "unknown storage class %S in #assign" other)

let parse_assign_directive st =
  (* #assign shmem (u0,u1,u2), gmem (mu,la); *)
  let clause st =
    let pl = placement_of_ident st (ident st) in
    expect st Lexer.LPAREN;
    let names = comma_separated st ident in
    expect st Lexer.RPAREN;
    (pl, names)
  in
  let clauses = comma_separated st clause in
  expect st Lexer.SEMI;
  clauses

let parse_stencil st pragma =
  expect st Lexer.KW_STENCIL;
  let name = ident st in
  expect st Lexer.LPAREN;
  let formals = if peek st = Lexer.RPAREN then [] else comma_separated st ident in
  expect st Lexer.RPAREN;
  expect st Lexer.LBRACE;
  let assign = ref [] in
  let body = ref [] in
  let rec items () =
    match peek st with
    | Lexer.RBRACE -> advance st
    | Lexer.KW_ASSIGN ->
      advance st;
      assign := !assign @ parse_assign_directive st;
      items ()
    | _ ->
      body := parse_stmt st :: !body;
      items ()
  in
  items ();
  { sname = name; formals; body = List.rev !body; assign = !assign; pragma }

(* ---------------- top level ---------------- *)

let parse_decl st =
  let name = ident st in
  if peek st = Lexer.LBRACKET then begin
    advance st;
    let dim st =
      match peek st with
      | Lexer.INT n -> advance st; Dconst n
      | Lexer.IDENT p -> advance st; Dparam p
      | t -> fail st (Printf.sprintf "expected dimension, found %s" (Lexer.token_to_string t))
    in
    let dims = comma_separated st dim in
    expect st Lexer.RBRACKET;
    Array_decl (name, dims)
  end
  else Scalar_decl name

let parse_app_item st =
  match peek st with
  | Lexer.KW_SWAP ->
    advance st;
    expect st Lexer.LPAREN;
    let a = ident st in
    expect st Lexer.COMMA;
    let b = ident st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Swap (a, b)
  | _ ->
    let f = ident st in
    expect st Lexer.LPAREN;
    let args = if peek st = Lexer.RPAREN then [] else comma_separated st ident in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Apply (f, args)

(** Parse a full DSL program from source text.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let params = ref [] in
  let iters = ref [] in
  let decls = ref [] in
  let copyin = ref [] in
  let stencils = ref [] in
  let main = ref [] in
  let copyout = ref [] in
  let rec top () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW_PARAMETER ->
      advance st;
      let item st =
        let n = ident st in
        expect st Lexer.EQ;
        let v = int_lit st in
        (n, v)
      in
      params := !params @ comma_separated st item;
      expect st Lexer.SEMI;
      top ()
    | Lexer.KW_ITERATOR ->
      advance st;
      iters := !iters @ comma_separated st ident;
      expect st Lexer.SEMI;
      top ()
    | Lexer.KW_DOUBLE | Lexer.KW_FLOAT ->
      advance st;
      decls := !decls @ comma_separated st parse_decl;
      expect st Lexer.SEMI;
      top ()
    | Lexer.KW_COPYIN ->
      advance st;
      copyin := !copyin @ comma_separated st ident;
      expect st Lexer.SEMI;
      top ()
    | Lexer.KW_COPYOUT ->
      advance st;
      copyout := !copyout @ comma_separated st ident;
      expect st Lexer.SEMI;
      top ()
    | Lexer.KW_PRAGMA ->
      advance st;
      let pragma = parse_pragma st in
      stencils := !stencils @ [ parse_stencil st pragma ];
      top ()
    | Lexer.KW_STENCIL ->
      stencils := !stencils @ [ parse_stencil st empty_pragma ];
      top ()
    | Lexer.KW_ITERATE ->
      advance st;
      let n = int_lit st in
      expect st Lexer.LBRACE;
      let apps = ref [] in
      while peek st <> Lexer.RBRACE do
        apps := parse_app_item st :: !apps
      done;
      advance st;
      main := !main @ [ Iterate (n, List.rev !apps) ];
      top ()
    | Lexer.IDENT _ | Lexer.KW_SWAP ->
      main := !main @ [ Run (parse_app_item st) ];
      top ()
    | t -> fail st (Printf.sprintf "unexpected %s at top level" (Lexer.token_to_string t))
  in
  top ();
  {
    params = !params;
    iters = !iters;
    decls = !decls;
    copyin = !copyin;
    stencils = !stencils;
    main = !main;
    copyout = !copyout;
  }

(** Parse a single expression (used by tests and the builder API). *)
let parse_expr_string src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e
