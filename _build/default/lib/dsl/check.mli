(** Semantic checking of parsed DSL programs: name resolution, arity and
    rank consistency, iterator discipline (declared, ordered, unrepeated
    within one access), intrinsic arities, [#assign] targets, and call
    sites.  Later phases may assume a checked program is well-formed. *)

exception Semantic_error of string

(** @raise Semantic_error with a readable message on the first violation. *)
val check : Ast.program -> unit

(** Math intrinsics accepted in stencil bodies, with arities. *)
val intrinsics : (string * int) list
