(** Static analysis of instantiated kernels.

    Everything later phases need to know about a stencil body: access
    offsets, stencil order, FLOP counts (Table-I convention: one FLOP per
    binary arithmetic operation; loop-invariant temporaries are hoisted
    and free), halo extents for fused DAGs, the homogenizability test
    that gates retiming (Section III-B2), and pointwise-combination
    detection for storage/computation folding (Section III-B4). *)

(** One array read with its per-dimension binding: for each dimension of
    the array, the indexing iterator (if any) and the constant shift. *)
type access = {
  array : string;
  binding : (string option * int) array;
}

val accesses_of_expr : Ast.expr -> access list
val accesses_of_stmt : Ast.stmt -> access list

(** All array reads in the kernel body. *)
val read_accesses : Instantiate.kernel -> access list

(** Map an access to a shift per kernel iterator (dimensions indexed by a
    constant contribute nothing). *)
val offset_vector : string list -> access -> int array

(** Maximum |shift| over all reads — the stencil order [k] of Table I. *)
val stencil_order : Instantiate.kernel -> int

(** Per-dimension maximum |shift|. *)
val order_per_dim : Instantiate.kernel -> int array

val flops_of_expr : Ast.expr -> int

(** FLOPs of one statement; [+=] costs one extra add; a temporary whose
    right-hand side reads no array is loop-invariant and costs nothing. *)
val flops_of_stmt : Ast.stmt -> int

(** Useful double-precision FLOPs per interior domain point. *)
val flops_per_point : Instantiate.kernel -> int

val io_arrays : Instantiate.kernel -> string list

(** Distinct input/output arrays touched — "# IO Arrays" of Table I. *)
val io_array_count : Instantiate.kernel -> int

(** Theoretical operational intensity (Table III's OI_T): FLOPs per byte
    assuming each IO array element moves exactly once. *)
val theoretical_oi : Instantiate.kernel -> float

(** Textual reads of each array per point — the demotion-victim metric of
    resource rationing (Section II-B2). *)
val reads_per_point : Instantiate.kernel -> (string * int) list

(** Distinct read-offset vectors per array, aligned to kernel iterators. *)
val distinct_offsets : Instantiate.kernel -> (string * int array list) list

(** Shift range [(lo, hi)] of reads of an array along one iterator
    dimension; [(0, 0)] when never read at an offset there. *)
val offset_range : Instantiate.kernel -> string -> int -> int * int

(** {1 Halo extents for fused kernels} *)

(** Interval per dimension describing how far beyond the output tile a
    value must be available: [(lo, hi)] with [lo <= 0 <= hi]. *)
type extent = (int * int) array

val zero_extent : int -> extent
val union_extent : extent -> extent -> extent
val shift_extent : extent -> int array -> extent
val extent_width : extent -> int -> int

(** Backward halo propagation over the body: for every array and
    temporary, the region (relative to one output point) that must be
    available — the analysis that drives overlapped tiling of stencil
    DAGs. *)
val required_extents : Instantiate.kernel -> (string, extent) Hashtbl.t

(** Widest extent over intermediate (written-then-read) arrays: the
    recomputation halo overlapped tiling pays for the fusion. *)
val recompute_halo : Instantiate.kernel -> int

(** {1 Homogenizability (retiming precondition)} *)

(** Split an expression into top-level additive terms with signs
    ([true] = positive). *)
val decompose_sum : Ast.expr -> (bool * Ast.expr) list

(** [term_stream_shift iters dim t] is [Some s] when every array read in
    [t] shares shift [s] along [dim] (the term homogenizes), [None] when
    shifts differ; a term without reads homogenizes at 0. *)
val term_stream_shift : string list -> string -> Ast.expr -> int option

val stmt_retimable : string list -> string -> Ast.stmt -> bool

(** The whole kernel is retimable along [dim] when every statement's
    additive terms homogenize. *)
val kernel_retimable : Instantiate.kernel -> string -> bool

(** {1 Folding (Section III-B4)} *)

(** Groups of arrays only ever read combined pointwise with one operator
    at identical offsets — candidates for storing the combined value. *)
val foldable_groups : Instantiate.kernel -> (Ast.binop * string list) list
