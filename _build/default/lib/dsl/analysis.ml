(* Static analysis of instantiated kernels: access offsets, stencil order,
   FLOP counts, halo extents for fusion, and the homogenizability test used
   by retiming (paper, Sections II-III).

   FLOP convention: each binary arithmetic operation counts as one FLOP
   (negation is folded and counts zero; one-argument intrinsics count one,
   [pow] counts one, [fma] counts two).  With this convention the 7-point
   Jacobi of Listing 1 costs exactly the 10 FLOPs reported in Table I, and
   theoretical OI = flops / (8 bytes x #IO arrays) reproduces every OI_T
   entry of Table III. *)

open Ast
module I = Instantiate

(* The tuner measures hundreds of plans over one kernel; the body-level
   analyses below are pure, so memoize them keyed by the body (structural
   hashing with full structural equality on collision — correct, and the
   lookup is far cheaper than the O(body x reads) recomputation). *)
let memo_table : (stmt list * string list, Obj.t) Hashtbl.t = Hashtbl.create 64

let memoized (type a) (tag : int) (k : I.kernel) (f : I.kernel -> a) : a =
  let key = (Decl_temp (string_of_int tag, Const 0.0) :: k.body, k.iters) in
  match Hashtbl.find_opt memo_table key with
  | Some v -> (Obj.obj v : a)
  | None ->
    let v = f k in
    Hashtbl.replace memo_table key (Obj.repr v);
    if Hashtbl.length memo_table > 4096 then Hashtbl.reset memo_table;
    v

(** One array read with its per-dimension binding: for each dimension of
    the array, the iterator indexing it (if any) and the constant shift. *)
type access = {
  array : string;
  binding : (string option * int) array;
}

let accesses_of_expr e =
  List.map
    (fun (a, idx) ->
      { array = a; binding = Array.of_list (List.map (fun i -> (i.iter, i.shift)) idx) })
    (reads_of_expr e)

let accesses_of_stmt st = fold_stmt_exprs (fun acc e -> acc @ accesses_of_expr e) [] st

let read_accesses_uncached (k : I.kernel) = List.concat_map accesses_of_stmt k.body
let read_accesses k = memoized 1 k read_accesses_uncached

(** [offset_vector iters access] maps an access to a shift per kernel
    iterator (dimensions indexed by a constant contribute nothing). *)
let offset_vector iters (a : access) =
  let v = Array.make (List.length iters) 0 in
  Array.iter
    (fun (it, shift) ->
      match it with
      | None -> ()
      | Some name -> (
        match List.find_index (String.equal name) iters with
        | Some d -> v.(d) <- shift
        | None -> ()))
    a.binding;
  v

(** Maximum |shift| over all reads of grid arrays: the stencil order [k]
    of Table I. *)
let stencil_order (k : I.kernel) =
  List.fold_left
    (fun acc a ->
      Array.fold_left
        (fun acc (it, shift) -> if it = None then acc else max acc (abs shift))
        acc a.binding)
    0 (read_accesses k)

(** Per-dimension order: maximum |shift| along each kernel iterator. *)
let order_per_dim (k : I.kernel) =
  let v = Array.make (List.length k.iters) 0 in
  List.iter
    (fun a ->
      let ov = offset_vector k.iters a in
      Array.iteri (fun d s -> v.(d) <- max v.(d) (abs s)) ov)
    (read_accesses k);
  v

let intrinsic_flops = function
  | "min" | "max" | "sqrt" | "fabs" | "exp" | "log" | "sin" | "cos" | "pow" -> 1
  | "fma" -> 2
  | _ -> 1

let rec flops_of_expr = function
  | Const _ | Scalar_ref _ | Access _ -> 0
  | Neg e -> flops_of_expr e
  | Bin (_, e1, e2) -> 1 + flops_of_expr e1 + flops_of_expr e2
  | Call (f, args) ->
    intrinsic_flops f + List.fold_left (fun acc e -> acc + flops_of_expr e) 0 args

let flops_of_stmt = function
  | Decl_temp (_, e) ->
    (* A temporary with no array reads is loop-invariant: the compiler
       hoists it, so it costs nothing per point (the paper's Table I
       counts the Listing-1 Jacobi at 10 FLOPs accordingly). *)
    if reads_of_expr e = [] then 0 else flops_of_expr e
  | Assign (_, _, e) -> flops_of_expr e
  | Accum (_, _, e) -> 1 + flops_of_expr e  (* the += add *)

(** Useful double-precision FLOPs per interior domain point. *)
let flops_per_point (k : I.kernel) =
  List.fold_left (fun acc st -> acc + flops_of_stmt st) 0 k.body

(** Distinct input/output arrays touched — the "# IO Arrays" of Table I. *)
let io_arrays (k : I.kernel) = List.map fst k.arrays
let io_array_count (k : I.kernel) = List.length k.arrays

(** Theoretical operational intensity (Table III, column OI_T): FLOPs per
    byte assuming each IO array element moves exactly once. *)
let theoretical_oi (k : I.kernel) =
  float_of_int (flops_per_point k) /. (8.0 *. float_of_int (io_array_count k))

(** Number of textual reads of each array per domain point (used to pick a
    demotion victim during resource rationing, Section II-B2). *)
let reads_per_point (k : I.kernel) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let c = try Hashtbl.find tbl a.array with Not_found -> 0 in
      Hashtbl.replace tbl a.array (c + 1))
    (read_accesses k);
  List.filter_map
    (fun (name, _) ->
      match Hashtbl.find_opt tbl name with
      | Some c -> Some (name, c)
      | None -> None)
    k.arrays

(** Distinct read-offset vectors per array, aligned to kernel iterators.
    Lower-rank arrays produce vectors with zeros in unbound dimensions. *)
let distinct_offsets_uncached (k : I.kernel) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let ov = offset_vector k.iters a in
      let existing = try Hashtbl.find tbl a.array with Not_found -> [] in
      if not (List.mem ov existing) then Hashtbl.replace tbl a.array (ov :: existing))
    (read_accesses k);
  Hashtbl.fold (fun name offs acc -> (name, List.rev offs) :: acc) tbl []
  |> List.sort compare

let distinct_offsets k = memoized 3 k distinct_offsets_uncached

(** Shift range [(lo, hi)] of reads of [array] along iterator dimension
    [dim]; [(0, 0)] when the array is never read at an offset there. *)
let offset_range (k : I.kernel) array dim =
  List.fold_left
    (fun (lo, hi) a ->
      if a.array <> array then (lo, hi)
      else
        let s = (offset_vector k.iters a).(dim) in
        (min lo s, max hi s))
    (0, 0)
    (read_accesses k)

(* ------------------------------------------------------------------ *)
(* Halo extents for multi-statement (fused) kernels                    *)
(* ------------------------------------------------------------------ *)

(** Interval per dimension describing how far beyond the output tile a
    value must be available: [(lo, hi)] with [lo <= 0 <= hi]. *)
type extent = (int * int) array

let zero_extent rank = Array.make rank (0, 0)

let union_extent (a : extent) (b : extent) =
  Array.init (Array.length a) (fun d ->
      let alo, ahi = a.(d) and blo, bhi = b.(d) in
      (min alo blo, max ahi bhi))

let shift_extent (e : extent) (off : int array) =
  Array.init (Array.length e) (fun d ->
      let lo, hi = e.(d) in
      (lo + off.(d), hi + off.(d)))

let extent_width (e : extent) d =
  let lo, hi = e.(d) in
  hi - lo

(** [required_extents kernel] computes, for every array and temporary the
    body reads or writes, the region (relative to one output point) that
    must be available: the classic backward halo propagation that drives
    overlapped tiling of stencil DAGs.  Final outputs get [(0, 0)] per
    dimension; walking the body backwards, a statement computing [A] over
    extent [eA] forces each read [B\[+off\]] to extent [eA + off]. *)
let required_extents_uncached (k : I.kernel) =
  let rank = List.length k.iters in
  let exts : (string, extent) Hashtbl.t = Hashtbl.create 16 in
  let get name =
    match Hashtbl.find_opt exts name with
    | Some e -> e
    | None -> zero_extent rank
  in
  let widen name e = Hashtbl.replace exts name (union_extent (get name) e) in
  (* Arrays written but never read later in the body are final outputs. *)
  let written = List.filter_map written_array k.body in
  List.iter (fun a -> widen a (zero_extent rank)) written;
  let process_stmt st =
    let stmt_extent =
      match st with
      | Decl_temp (n, _) -> get n
      | Assign (a, _, _) | Accum (a, _, _) -> get a
    in
    let absorb_expr e =
      List.iter
        (fun acc_read ->
          widen acc_read.array (shift_extent stmt_extent (offset_vector k.iters acc_read)))
        (accesses_of_expr e);
      List.iter (fun s -> widen s stmt_extent) (scalars_of_expr e)
    in
    fold_stmt_exprs (fun () e -> absorb_expr e) () st
  in
  List.iter process_stmt (List.rev k.body);
  exts

let required_extents k = memoized 2 k required_extents_uncached

(** Recomputation halo of a fused kernel: the widest extent over all
    intermediate (written then read) arrays.  Zero when nothing written is
    re-read at an offset. *)
let recompute_halo (k : I.kernel) =
  let exts = required_extents k in
  let written = List.filter_map written_array k.body |> List.sort_uniq compare in
  let read_back =
    List.filter
      (fun a -> List.exists (fun r -> r.array = a) (read_accesses k))
      written
  in
  List.fold_left
    (fun acc a ->
      match Hashtbl.find_opt exts a with
      | Some e ->
        Array.fold_left (fun acc (lo, hi) -> max acc (max (-lo) hi)) acc e
      | None -> acc)
    0 read_back

(* ------------------------------------------------------------------ *)
(* Homogenizability (retiming precondition, Section III-B2)            *)
(* ------------------------------------------------------------------ *)

(** Split an expression into top-level additive terms with their signs. *)
let rec decompose_sum e =
  match e with
  | Bin (Add, e1, e2) -> decompose_sum e1 @ decompose_sum e2
  | Bin (Sub, e1, e2) ->
    decompose_sum e1 @ List.map (fun (sign, t) -> (not sign, t)) (decompose_sum e2)
  | Neg e1 -> List.map (fun (sign, t) -> (not sign, t)) (decompose_sum e1)
  | _ -> [ (true, e) ]

(** [term_stream_shift iters dim t] is [Some s] when every array read in
    term [t] has the same shift [s] along iterator [dim] (so adding [-s]
    to both sides homogenizes the term), and [None] when shifts differ.
    A term with no array reads homogenizes trivially at shift 0. *)
let term_stream_shift iters dim t =
  let d =
    match List.find_index (String.equal dim) iters with
    | Some d -> d
    | None -> invalid_arg "term_stream_shift: unknown iterator"
  in
  let shifts =
    List.map (fun a -> (offset_vector iters a).(d)) (accesses_of_expr t)
    |> List.sort_uniq compare
  in
  match shifts with
  | [] -> Some 0
  | [ s ] -> Some s
  | _ :: _ :: _ -> None

(** A statement is retimable along [dim] when each additive term of its
    RHS is homogenizable; the whole kernel is retimable when all statements
    writing grid arrays are. *)
let stmt_retimable iters dim = function
  | Decl_temp (_, e) | Assign (_, _, e) | Accum (_, _, e) ->
    List.for_all (fun (_, t) -> term_stream_shift iters dim t <> None) (decompose_sum e)

let kernel_retimable (k : I.kernel) dim =
  List.length k.iters >= 1
  && List.mem dim k.iters
  && List.for_all (stmt_retimable k.iters dim) k.body

(* ------------------------------------------------------------------ *)
(* Pointwise-combination detection (folding, Section III-B4)           *)
(* ------------------------------------------------------------------ *)

(** Arrays that are only ever read at the same offsets as one another and
    always combined with the same pointwise operator can be folded into a
    single staged value.  [foldable_groups k] returns groups of arrays
    that are only read as [A op B op ...] at identical offsets. *)
let foldable_groups (k : I.kernel) =
  (* Collect maximal product/sum chains whose factors are single reads of
     distinct arrays at equal offsets. *)
  let chains = Hashtbl.create 8 in
  let rec scan e =
    match e with
    | Bin (op, _, _) when op = Mul || op = Add -> (
      let rec flatten = function
        | Bin (o, a, b) when o = op -> flatten a @ flatten b
        | other -> [ other ]
      in
      let parts = flatten e in
      let as_reads =
        List.map (function Access (a, idx) -> Some (a, idx) | _ -> None) parts
      in
      if List.for_all Option.is_some as_reads && List.length parts > 1 then begin
        let reads = List.map Option.get as_reads in
        let offsets = List.map snd reads |> List.sort_uniq compare in
        let arrays = List.map fst reads |> List.sort_uniq compare in
        if List.length offsets = 1 && List.length arrays = List.length reads then
          Hashtbl.replace chains (op, arrays) ()
      end;
      List.iter scan parts)
    | Bin (_, e1, e2) -> scan e1; scan e2
    | Neg e1 -> scan e1
    | Call (_, args) -> List.iter scan args
    | Const _ | Scalar_ref _ | Access _ -> ()
  in
  List.iter (fun st -> fold_stmt_exprs (fun () e -> scan e) () st) k.body;
  (* A group is foldable only if its member arrays are *never* read outside
     the chain pattern, i.e. every read of a member is part of a chain with
     the same signature.  Conservatively require that each member array is
     read only together with the group. *)
  let all_reads = read_accesses k in
  let candidates = Hashtbl.fold (fun key () acc -> key :: acc) chains [] in
  List.filter
    (fun (_, arrays) ->
      let member a = List.mem a arrays in
      let group_read_count =
        List.length (List.filter (fun r -> member r.array) all_reads)
      in
      (* Each chain occurrence reads every member exactly once. *)
      group_read_count mod List.length arrays = 0
      && List.for_all
           (fun a ->
             let per_member =
               List.length (List.filter (fun r -> r.array = a) all_reads)
             in
             per_member * List.length arrays = group_read_count)
           arrays)
    candidates
  |> List.map (fun (op, arrays) -> (op, arrays))
