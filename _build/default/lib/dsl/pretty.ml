(* Pretty-printer for the DSL.  Output is valid DSL concrete syntax: the
   parser round-trips it, which the property tests rely on.  It is also used
   by the fission component to write out generated DSL specifications
   (paper, Section VI-B). *)

open Ast

let pp_index fmt { iter; shift } =
  match iter with
  | None -> Format.fprintf fmt "%d" shift
  | Some it ->
    if shift = 0 then Format.fprintf fmt "%s" it
    else if shift > 0 then Format.fprintf fmt "%s+%d" it shift
    else Format.fprintf fmt "%s-%d" it (-shift)

let pp_indices fmt idx = List.iter (fun i -> Format.fprintf fmt "[%a]" pp_index i) idx

(* Operator precedence levels used to parenthesize minimally:
   0 = additive, 1 = multiplicative, 2 = unary / atoms. *)
let prec_of = function
  | Add | Sub -> 0
  | Mul | Div -> 1

let rec pp_expr_prec level fmt e =
  match e with
  | Const f ->
    if Float.is_integer f && Float.abs f < 1e16 then Format.fprintf fmt "%.1f" f
    else Format.fprintf fmt "%.17g" f
  | Scalar_ref s -> Format.pp_print_string fmt s
  | Access (a, idx) -> Format.fprintf fmt "%s%a" a pp_indices idx
  | Neg e1 -> Format.fprintf fmt "-%a" (pp_expr_prec 2) e1
  | Bin (op, e1, e2) ->
    let p = prec_of op in
    let body fmt () =
      (* Right operand printed at [p + 1] because -, / are left-associative. *)
      Format.fprintf fmt "%a %s %a" (pp_expr_prec p) e1 (binop_to_string op)
        (pp_expr_prec (p + 1)) e2
    in
    if p < level then Format.fprintf fmt "(%a)" body () else body fmt ()
  | Call (f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (pp_expr_prec 0))
      args

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_stmt fmt = function
  | Decl_temp (n, e) -> Format.fprintf fmt "double %s = %a;" n pp_expr e
  | Assign (a, idx, e) -> Format.fprintf fmt "%s%a = %a;" a pp_indices idx pp_expr e
  | Accum (a, idx, e) -> Format.fprintf fmt "%s%a += %a;" a pp_indices idx pp_expr e

let pp_name_list fmt names =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    Format.pp_print_string fmt names

let pp_pragma fmt (p : pragma) =
  let something =
    p.stream_dim <> None || p.block <> None || p.unroll <> [] || p.occupancy <> None
  in
  if something then begin
    Format.fprintf fmt "#pragma";
    (match p.stream_dim with
     | Some d -> Format.fprintf fmt " stream %s" d
     | None -> ());
    (match p.block with
     | Some dims ->
       Format.fprintf fmt " block (%a)"
         (Format.pp_print_list
            ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
            Format.pp_print_int)
         dims
     | None -> ());
    List.iter (fun (it, f) -> Format.fprintf fmt " unroll %s=%d" it f) p.unroll;
    (match p.occupancy with
     | Some t -> Format.fprintf fmt " occupancy %g" t
     | None -> ());
    Format.fprintf fmt "@\n"
  end

let pp_assign_clause fmt (pl, names) =
  Format.fprintf fmt "%s (%a)" (placement_to_string pl) pp_name_list names

let pp_stencil fmt (s : stencil_def) =
  pp_pragma fmt s.pragma;
  Format.fprintf fmt "@[<v 2>stencil %s (%a) {" s.sname pp_name_list s.formals;
  if s.assign <> [] then
    Format.fprintf fmt "@\n#assign %a;"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_assign_clause)
      s.assign;
  List.iter (fun st -> Format.fprintf fmt "@\n%a" pp_stmt st) s.body;
  Format.fprintf fmt "@]@\n}@\n"

let pp_dim fmt = function
  | Dparam p -> Format.pp_print_string fmt p
  | Dconst c -> Format.pp_print_int fmt c

let pp_decl fmt = function
  | Array_decl (a, dims) ->
    Format.fprintf fmt "%s[%a]" a
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         pp_dim)
      dims
  | Scalar_decl s -> Format.pp_print_string fmt s

let pp_app_item fmt = function
  | Apply (f, args) -> Format.fprintf fmt "%s (%a);" f pp_name_list args
  | Swap (a, b) -> Format.fprintf fmt "swap (%s, %s);" a b

let pp_host_item fmt = function
  | Run app -> pp_app_item fmt app
  | Iterate (n, apps) ->
    Format.fprintf fmt "@[<v 2>iterate %d {" n;
    List.iter (fun a -> Format.fprintf fmt "@\n%a" pp_app_item a) apps;
    Format.fprintf fmt "@]@\n}"

let pp_program fmt (p : program) =
  if p.params <> [] then
    Format.fprintf fmt "parameter %a;@\n"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt (n, v) -> Format.fprintf fmt "%s=%d" n v))
      p.params;
  if p.iters <> [] then Format.fprintf fmt "iterator %a;@\n" pp_name_list p.iters;
  if p.decls <> [] then
    Format.fprintf fmt "double %a;@\n"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_decl)
      p.decls;
  if p.copyin <> [] then Format.fprintf fmt "copyin %a;@\n" pp_name_list p.copyin;
  List.iter (fun s -> pp_stencil fmt s) p.stencils;
  List.iter (fun h -> Format.fprintf fmt "%a@\n" pp_host_item h) p.main;
  if p.copyout <> [] then Format.fprintf fmt "copyout %a;@\n" pp_name_list p.copyout

let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let program_to_string p = Format.asprintf "%a" pp_program p
