(* Hand-written lexer for the DSL.  Produces a token list with line
   information for error reporting; the grammar is small enough that a
   generator would be overkill. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KW_PARAMETER
  | KW_ITERATOR
  | KW_DOUBLE
  | KW_FLOAT
  | KW_COPYIN
  | KW_COPYOUT
  | KW_STENCIL
  | KW_ITERATE
  | KW_SWAP
  | KW_PRAGMA  (** [#pragma] *)
  | KW_ASSIGN  (** [#assign] *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | EQ
  | PLUSEQ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of string * int  (** message, line *)

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | KW_PARAMETER -> "'parameter'"
  | KW_ITERATOR -> "'iterator'"
  | KW_DOUBLE -> "'double'"
  | KW_FLOAT -> "'float'"
  | KW_COPYIN -> "'copyin'"
  | KW_COPYOUT -> "'copyout'"
  | KW_STENCIL -> "'stencil'"
  | KW_ITERATE -> "'iterate'"
  | KW_SWAP -> "'swap'"
  | KW_PRAGMA -> "'#pragma'"
  | KW_ASSIGN -> "'#assign'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | EQ -> "'='"
  | PLUSEQ -> "'+='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"

let keyword_of_ident = function
  | "parameter" -> Some KW_PARAMETER
  | "iterator" -> Some KW_ITERATOR
  | "double" -> Some KW_DOUBLE
  | "float" -> Some KW_FLOAT
  | "copyin" -> Some KW_COPYIN
  | "copyout" -> Some KW_COPYOUT
  | "stencil" -> Some KW_STENCIL
  | "iterate" -> Some KW_ITERATE
  | "swap" -> Some KW_SWAP
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** [tokenize src] lexes the whole input and returns [(token, line)] pairs
    terminated by [EOF].  Comments are C-style: [// ...] and [/* ... */]. *)
let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let rec skip_block_comment i =
    if i + 1 >= n then raise (Lex_error ("unterminated comment", !line))
    else if src.[i] = '\n' then (incr line; skip_block_comment (i + 1))
    else if src.[i] = '*' && src.[i + 1] = '/' then i + 2
    else skip_block_comment (i + 1)
  in
  let rec skip_line_comment i =
    if i >= n then i else if src.[i] = '\n' then i else skip_line_comment (i + 1)
  in
  let lex_number i =
    let j = ref i in
    while !j < n && is_digit src.[!j] do incr j done;
    let is_float = ref false in
    if !j < n && src.[!j] = '.' then begin
      is_float := true;
      incr j;
      while !j < n && is_digit src.[!j] do incr j done
    end;
    if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
      is_float := true;
      incr j;
      if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
      while !j < n && is_digit src.[!j] do incr j done
    end;
    let text = String.sub src i (!j - i) in
    if !is_float then emit (FLOAT (float_of_string text))
    else emit (INT (int_of_string text));
    !j
  in
  let lex_ident i =
    let j = ref i in
    while !j < n && is_ident_char src.[!j] do incr j done;
    let text = String.sub src i (!j - i) in
    (match keyword_of_ident text with
     | Some kw -> emit kw
     | None -> emit (IDENT text));
    !j
  in
  let lex_hash i =
    (* #pragma or #assign *)
    let j = ref (i + 1) in
    while !j < n && is_ident_char src.[!j] do incr j done;
    let text = String.sub src (i + 1) (!j - i - 1) in
    (match text with
     | "pragma" -> emit KW_PRAGMA
     | "assign" -> emit KW_ASSIGN
     | other -> raise (Lex_error (Printf.sprintf "unknown directive #%s" other, !line)));
    !j
  in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | '\n' -> incr line; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' -> go (skip_line_comment (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' -> go (skip_block_comment (i + 2))
      | '#' -> go (lex_hash i)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | '+' when i + 1 < n && src.[i + 1] = '=' -> emit PLUSEQ; go (i + 2)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '=' -> emit EQ; go (i + 1)
      | c when is_digit c -> go (lex_number i)
      | c when is_ident_start c -> go (lex_ident i)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
  in
  go 0;
  emit EOF;
  List.rev !toks
