(** Statement decomposition and retiming (paper, Section III-B2).

    Decomposition splits each grid-writing statement's right-hand side
    into its top-level additive terms, emitted as an assignment followed
    by accumulations.  Retiming requires each term to homogenize — all
    its reads share one offset along the streaming dimension — so the
    generated code can fold the term into a register accumulator as the
    corresponding input plane arrives, instead of buffering the whole
    plane window.  Decomposition preserves FLOP counts exactly and
    values up to floating-point reassociation (and up to per-term guards
    at domain faces). *)

val decompose_stmt : Artemis_dsl.Ast.stmt -> Artemis_dsl.Ast.stmt list

(** Decomposed form of the whole body. *)
val decompose_kernel :
  Artemis_dsl.Instantiate.kernel -> Artemis_dsl.Instantiate.kernel

(** Every decomposed sub-statement homogenizes along [dim]. *)
val retimable : Artemis_dsl.Instantiate.kernel -> dim:string -> bool

(** The decomposed kernel when retimable along the iterator of
    [dim_index], [None] otherwise (the caller leaves retiming off). *)
val apply :
  Artemis_dsl.Instantiate.kernel -> dim_index:int ->
  Artemis_dsl.Instantiate.kernel option
