(* Resource assignment: which arrays to stage in shared memory or
   registers and which to read straight from global memory.

   Automatic policy: input arrays with reuse (read at more than one
   offset) are staged; single-use inputs and low-rank (1-D) arrays stay in
   global memory — staging them buys nothing and costs occupancy.  The
   domain expert's [#assign] clauses override the policy (Section II-B1),
   and an [occupancy t] target triggers the demotion loop of Section
   II-B2: while the shared-memory footprint caps occupancy below the
   target, demote the staged array with the fewest reads per point. *)

module A = Artemis_dsl.Ast
module An = Artemis_dsl.Analysis
module I = Artemis_dsl.Instantiate
module Plan = Artemis_ir.Plan
module Launch = Artemis_ir.Launch
module Estimate = Artemis_ir.Estimate
module Occupancy = Artemis_gpu.Occupancy

let array_rank (k : I.kernel) name =
  match List.assoc_opt name k.arrays with
  | Some dims -> Array.length dims
  | None -> 0

(** Automatic staging decision, before user overrides. *)
let automatic (k : I.kernel) =
  let rank = Array.length k.domain in
  let offsets = An.distinct_offsets k in
  let inter = Launch.intermediates k in
  List.filter_map
    (fun (name, _) ->
      if List.mem name inter then
        (* Intermediates of a fused kernel stay on chip. *)
        Some (name, A.Shmem)
      else if array_rank k name < rank then
        (* Low-rank (e.g. 1-D stretching) arrays: global/L2 serves them. *)
        None
      else
        match List.assoc_opt name offsets with
        | Some offs when List.length offs > 1 -> Some (name, A.Shmem)
        | Some _ | None -> None)
    k.arrays

(** Apply [#assign] user clauses on top of the automatic map. *)
let with_user (k : I.kernel) auto =
  List.fold_left
    (fun acc (name, pl) -> (name, pl) :: List.remove_assoc name acc)
    auto k.assign

(* Shared bytes a placement map costs under the rest of the plan. *)
let trial_plan (base : Plan.t) placement = { base with placement }

let occupancy_of (p : Plan.t) = (Estimate.resources p).occupancy.occupancy

(** Demote staged arrays (fewest reads per point first, never user-pinned
    ones) until the occupancy target is reachable or nothing is left to
    demote.  Returns the final placement map. *)
let ration (base : Plan.t) ~user_pinned ~target placement =
  let k = base.kernel in
  let reads = An.reads_per_point k in
  let rec demote placement =
    let p = trial_plan base placement in
    if occupancy_of p >= target -. 1e-9 then placement
    else begin
      let res = Estimate.resources p in
      let shm_limited =
        res.occupancy.limiter = Occupancy.By_shared
        || res.shared_per_block > 0
      in
      if not shm_limited then placement
      else begin
        let candidates =
          List.filter
            (fun (name, pl) -> pl = A.Shmem && not (List.mem name user_pinned))
            placement
        in
        match
          List.sort
            (fun (a, _) (b, _) ->
              compare
                (Option.value ~default:0 (List.assoc_opt a reads))
                (Option.value ~default:0 (List.assoc_opt b reads)))
            candidates
        with
        | [] -> placement
        | (victim, _) :: _ ->
          demote ((victim, A.Gmem) :: List.remove_assoc victim placement)
      end
    end
  in
  demote placement

(** Full assignment for a plan skeleton: automatic policy, user overrides,
    then occupancy-targeted rationing. *)
let assign (base : Plan.t) ~honor_user ~target_occupancy =
  let k = base.kernel in
  let auto = automatic k in
  let placement, pinned =
    if honor_user then (with_user k auto, List.map fst k.assign) else (auto, [])
  in
  match target_occupancy with
  | None -> placement
  | Some t -> ration base ~user_pinned:pinned ~target:t placement
