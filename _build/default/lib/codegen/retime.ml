(* Statement decomposition and retiming (paper, Section III-B2).

   Decomposition splits each grid-writing statement's RHS into its
   top-level additive terms and emits them as an assignment followed by
   accumulations.  Retiming then checks each term is homogenizable — all
   array reads in it share one offset along the streaming dimension — so
   the generated code can fold the term into a register accumulator when
   the corresponding input plane arrives, instead of buffering the whole
   plane window.  The transformation here produces the decomposed body
   (semantically equal up to floating-point reassociation); the staging
   and traffic consequences are modelled by the plan's [retime] flag. *)

module A = Artemis_dsl.Ast
module An = Artemis_dsl.Analysis
module I = Artemis_dsl.Instantiate

let neg_term t = A.Neg t

(** Decompose one statement into an assignment plus accumulations, one per
    additive term.  Statements with a single term are left untouched. *)
let decompose_stmt (st : A.stmt) =
  match st with
  | A.Decl_temp _ -> [ st ]
  | A.Assign (a, idx, e) -> (
    match An.decompose_sum e with
    | [] | [ _ ] -> [ st ]
    | (sign1, t1) :: rest ->
      A.Assign (a, idx, if sign1 then t1 else neg_term t1)
      :: List.map
           (fun (sign, t) -> A.Accum (a, idx, if sign then t else neg_term t))
           rest)
  | A.Accum (a, idx, e) -> (
    match An.decompose_sum e with
    | [] | [ _ ] -> [ st ]
    | terms ->
      List.map
        (fun (sign, t) -> A.Accum (a, idx, if sign then t else neg_term t))
        terms)

(** Decomposed form of a kernel body (used before retiming and by kernel
    fission to split accumulation chains). *)
let decompose_kernel (k : I.kernel) =
  { k with body = List.concat_map decompose_stmt k.body }

(** [retimable k dim] — every decomposed sub-statement homogenizes along
    [dim] (ARTEMIS retimes only in that case, Section III-B2). *)
let retimable (k : I.kernel) ~dim =
  An.kernel_retimable (decompose_kernel k) dim

(** Apply decomposition when the kernel is retimable along the iterator of
    streaming dimension [dim_index]; returns [None] when not retimable so
    the caller leaves the plan's retime flag off. *)
let apply (k : I.kernel) ~dim_index =
  match List.nth_opt k.iters dim_index with
  | None -> None
  | Some dim -> if retimable k ~dim then Some (decompose_kernel k) else None
