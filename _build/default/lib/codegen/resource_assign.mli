(** Resource assignment: which arrays to stage in shared memory or
    registers and which to read from global memory (paper, Section II-B).

    Automatic policy: inputs with reuse (read at more than one offset)
    and fused-kernel intermediates are staged; single-use inputs and
    low-rank (1-D) arrays stay in global memory.  The [#assign] clauses
    override the policy, and an [occupancy t] target triggers the
    demotion loop: while the shared footprint caps occupancy below the
    target, demote the staged array with the fewest reads per point. *)

(** Automatic staging map, before user overrides. *)
val automatic :
  Artemis_dsl.Instantiate.kernel ->
  (string * Artemis_dsl.Ast.placement) list

(** Layer the kernel's [#assign] clauses over a map. *)
val with_user :
  Artemis_dsl.Instantiate.kernel ->
  (string * Artemis_dsl.Ast.placement) list ->
  (string * Artemis_dsl.Ast.placement) list

(** Demote until [target] occupancy is reachable (user-pinned arrays are
    never demoted); returns the final map. *)
val ration :
  Artemis_ir.Plan.t -> user_pinned:string list -> target:float ->
  (string * Artemis_dsl.Ast.placement) list ->
  (string * Artemis_dsl.Ast.placement) list

(** The full assignment for a plan skeleton: automatic policy, user
    overrides when [honor_user], then occupancy-targeted rationing. *)
val assign :
  Artemis_ir.Plan.t -> honor_user:bool -> target_occupancy:float option ->
  (string * Artemis_dsl.Ast.placement) list
