lib/codegen/retime.mli: Artemis_dsl
