lib/codegen/retime.ml: Artemis_dsl List
