lib/codegen/lower.ml: Array Artemis_dsl Artemis_gpu Artemis_ir Fun List Option Options Resource_assign Retime
