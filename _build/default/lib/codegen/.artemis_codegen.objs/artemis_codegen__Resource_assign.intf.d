lib/codegen/resource_assign.mli: Artemis_dsl Artemis_ir
