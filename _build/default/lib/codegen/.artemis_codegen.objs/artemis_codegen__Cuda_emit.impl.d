lib/codegen/cuda_emit.ml: Array Artemis_dsl Artemis_ir Buffer Float Fun List Option Printf String
