lib/codegen/resource_assign.ml: Array Artemis_dsl Artemis_gpu Artemis_ir List Option
