lib/codegen/cuda_emit.mli: Artemis_ir
