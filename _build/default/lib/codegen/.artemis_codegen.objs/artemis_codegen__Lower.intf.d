lib/codegen/lower.mli: Artemis_dsl Artemis_gpu Artemis_ir Options
