lib/codegen/options.ml: Array Artemis_dsl Artemis_ir List String
