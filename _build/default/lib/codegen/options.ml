(* Code-generation options: everything a user pragma, a profiling
   guideline, or the autotuner can decide before lowering a kernel to a
   plan.  [None] fields mean "let ARTEMIS choose". *)

module A = Artemis_dsl.Ast
module Plan = Artemis_ir.Plan

type scheme_hint =
  | Auto  (** streaming along the slowest dimension when shared memory is used *)
  | Force_tiled
  | Force_stream of int option  (** dimension, [None] = slowest *)
  | Force_concurrent of int option * int  (** dimension, chunk *)

type t = {
  scheme : scheme_hint;
  use_shared : bool;  (** master switch; false = global-memory version *)
  block : int array option;  (** threads per dim, slowest first *)
  unroll : int array option;
  distribution : Plan.distribution;
  prefetch : bool;
  perspective : Plan.perspective;
  retime : bool;  (** decompose + retime when homogenizable (Section III-B2) *)
  fold : bool;  (** storage/computation folding (Section III-B4) *)
  max_regs : int;
  honor_user_assign : bool;  (** respect #assign clauses from the DSL *)
  target_occupancy : float option;  (** the pragma's [occupancy t] clause *)
}

let default =
  {
    scheme = Auto;
    use_shared = true;
    block = None;
    unroll = None;
    distribution = Plan.Blocked;
    prefetch = false;
    perspective = Plan.Output_persp;
    retime = false;
    fold = false;
    max_regs = 255;
    honor_user_assign = true;
    target_occupancy = None;
  }

(** The paper's global-memory comparison versions (Section VIII-F). *)
let global_tiled = { default with use_shared = false; scheme = Force_tiled }
let global_stream = { default with use_shared = false; scheme = Force_stream None }

(** Merge pragma guidance from the DSL into an option set: the pragma's
    stream/block/unroll/occupancy clauses override [base]'s corresponding
    fields (paper, Listing 1 line 5 and Section II-B2). *)
let of_pragma ?(base = default) (iters : string list) (pr : A.pragma) =
  let dim_index it = List.find_index (String.equal it) iters in
  let scheme =
    match pr.stream_dim with
    | Some it -> (
      match dim_index it with
      | Some d -> Force_stream (Some d)
      | None -> base.scheme)
    | None -> base.scheme
  in
  let rank = List.length iters in
  let block =
    match pr.block with
    | Some dims ->
      (* Pragmas list extents fastest dimension first. *)
      let b = Array.make rank 1 in
      List.iteri
        (fun i e ->
          let d = rank - 1 - i in
          if d >= 0 then b.(d) <- e)
        dims;
      Some b
    | None -> base.block
  in
  let unroll =
    if pr.unroll = [] then base.unroll
    else begin
      let u = Array.make rank 1 in
      List.iter
        (fun (it, f) ->
          match dim_index it with
          | Some d -> u.(d) <- f
          | None -> ())
        pr.unroll;
      Some u
    end
  in
  { base with scheme; block; unroll; target_occupancy = pr.occupancy }
