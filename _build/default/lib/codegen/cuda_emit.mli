(** CUDA C emission for a kernel plan.

    In the paper ARTEMIS emits CUDA that NVCC compiles; here the
    simulator stands in for the GPU, but every plan still prints the
    concrete CUDA it denotes — for inspection, stability tests, and to
    keep the lowering honest: staging loads, plane-window rotation,
    prefetch registers, register-cached planes, guards, and the host
    launcher all appear as visible code constructs. *)

(** Emit the CUDA source (kernel plus host launcher).  Deterministic:
    equal plans produce equal text. *)
val emit : Artemis_ir.Plan.t -> string
