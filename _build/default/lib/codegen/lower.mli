(** Lowering: DSL kernel + options -> kernel plan.

    Where ARTEMIS's decisions become a concrete code version: tiling
    scheme, thread-block shape and unroll factors, resource assignment
    (with user overrides and occupancy rationing), statement
    decomposition + retiming when homogenizable, folding, perspective and
    prefetch flags. *)

(** Default block shapes matching the paper's Section VIII-G baselines:
    (x=32, y=16) for streamed kernels, (x=16, y=4, z=4) tiled. *)
val default_block : int -> Artemis_ir.Plan.scheme -> int array

(** Lower one kernel under the given options.  The result is not yet
    validated: tuners filter with [Validate.violations], direct users
    call [Validate.check]. *)
val lower :
  Artemis_gpu.Device.t -> Artemis_dsl.Instantiate.kernel -> Options.t ->
  Artemis_ir.Plan.t

(** Lower with the kernel's own [#pragma] merged into the option base —
    the un-tuned "baseline version" of Section VII, step 1. *)
val lower_with_pragma :
  Artemis_gpu.Device.t -> Artemis_dsl.Instantiate.kernel -> Options.t ->
  Artemis_ir.Plan.t
