(* Launch geometry and staging layout of a plan: tile shapes, halos, grid
   extents, shared/register buffer structure, and synchronization counts.
   The executor, the analytic counter evaluator, the resource estimator and
   the CUDA emitter all derive their quantities from this one module so
   they agree by construction. *)

module A = Artemis_dsl.Ast
module I = Artemis_dsl.Instantiate
module An = Artemis_dsl.Analysis

type geometry = {
  rank : int;
  domain : int array;
  tile : int array;  (** output points per block per dimension *)
  grid : int array;  (** blocks per dimension *)
  total_blocks : int;
  interior_lo : int array;  (** first updated index per dimension *)
  interior_hi : int array;  (** last updated index per dimension (inclusive) *)
  input_extent : An.extent;  (** union of read extents of pure inputs *)
  steps_per_block : int;  (** plane steps walked when streaming, else 1 *)
}

(** How the reads of one array are staged inside the kernel. *)
type staging =
  | Stage_global  (** read straight from global memory at each use *)
  | Stage_const  (** constant memory (small read-only 1-D arrays) *)
  | Stage_tile of { halo : (int * int) array }
      (** whole halo-extended tile staged in shared memory (non-streaming) *)
  | Stage_stream of {
      shared_planes : int list;  (** stream-offsets staged as 2-D shared planes *)
      reg_planes : int list;  (** stream-offsets held in per-thread registers *)
      halo : (int * int) array;  (** in-plane halo (entries on the stream dim are (0,0)) *)
    }
  | Stage_fold_member of string
      (** folded into the named leader's buffer (Section III-B4): loaded
          from global once during staging, no dedicated storage, compute
          reads hit the leader *)

type buffer = {
  array : string;
  staging : staging;
  is_intermediate : bool;  (** written and re-read within the (fused) kernel *)
  extent : An.extent;  (** required read extent of this array *)
  reads_per_point : int;  (** textual reads per output point *)
}

let pure_inputs (k : I.kernel) =
  let written = List.filter_map A.written_array k.body |> List.sort_uniq compare in
  List.filter (fun (a, _) -> not (List.mem a written)) k.arrays |> List.map fst

let intermediates (k : I.kernel) =
  let written = List.filter_map A.written_array k.body |> List.sort_uniq compare in
  let reads = An.read_accesses k in
  List.filter (fun a -> List.exists (fun (r : An.access) -> r.array = a) reads) written

let final_outputs (k : I.kernel) =
  let inter = intermediates k in
  List.filter_map A.written_array k.body
  |> List.sort_uniq compare
  |> List.filter (fun a -> not (List.mem a inter))

(** Geometry of [plan].  Interior bounds come from the union of input-array
    extents: boundary points whose neighborhood leaves the domain keep
    their previous values, as the generated CUDA's guards arrange. *)
let geometry (p : Plan.t) =
  let k = p.kernel in
  let rank = Array.length k.domain in
  let exts = An.required_extents k in
  let inputs = pure_inputs k in
  let input_extent =
    List.fold_left
      (fun acc a ->
        match Hashtbl.find_opt exts a with
        | Some e -> An.union_extent acc e
        | None -> acc)
      (An.zero_extent rank) inputs
  in
  let tile =
    Array.init rank (fun d ->
        match p.scheme with
        | Plan.Serial_stream s when d = s -> k.domain.(d)
        | Plan.Concurrent_stream (s, chunk) when d = s -> chunk
        | Plan.Tiled | Plan.Serial_stream _ | Plan.Concurrent_stream _ ->
          p.block.(d) * p.unroll.(d))
  in
  let grid = Array.init rank (fun d -> (k.domain.(d) + tile.(d) - 1) / tile.(d)) in
  let total_blocks = Array.fold_left ( * ) 1 grid in
  let interior_lo = Array.init rank (fun d -> max 0 (-fst input_extent.(d))) in
  let interior_hi = Array.init rank (fun d -> (k.domain.(d) - 1) - max 0 (snd input_extent.(d))) in
  let steps_per_block =
    match Plan.stream_dim p with
    | None -> 1
    | Some s ->
      (* Walk the tile along the stream dimension plus the pipeline warmup
         needed to fill the plane window. *)
      let lo, hi = input_extent.(s) in
      tile.(s) + (hi - lo)
  in
  {
    rank; domain = k.domain; tile; grid; total_blocks; interior_lo; interior_hi;
    input_extent; steps_per_block;
  }

(* In-plane halo of one array: its extent with the stream dimension zeroed. *)
let in_plane_halo rank stream_dim (e : An.extent) =
  Array.init rank (fun d ->
      match stream_dim with
      | Some s when d = s -> (0, 0)
      | _ -> e.(d))

(** Staging layout of every array the kernel reads, given the plan's
    placement map.  With streaming, a plane whose reads all sit at the
    in-plane center can live in a per-thread register (Listing 2's
    [in_reg_m1]/[in_reg_p1]); planes read at in-plane offsets need a
    shared buffer.  Retiming collapses shared planes to the center plane
    only (inputs are then read once per plane and accumulated). *)
let buffers (p : Plan.t) =
  let k = p.kernel in
  let rank = Array.length k.domain in
  let exts = An.required_extents k in
  let offsets = An.distinct_offsets k in
  let reads = An.reads_per_point k in
  let inter = intermediates k in
  let stream = Plan.stream_dim p in
  let staging_for name =
    let placement = Plan.placement_of p name in
    let is_inter = List.mem name inter in
    let placement = if is_inter && placement = A.Gmem && Plan.uses_shared p then A.Shmem else placement in
    match placement with
    | A.Gmem -> Stage_global
    | A.Cmem -> Stage_const
    | A.Regs | A.Shmem -> (
      let ext = match Hashtbl.find_opt exts name with Some e -> e | None -> An.zero_extent rank in
      match stream with
      | None -> Stage_tile { halo = ext }
      | Some s ->
        let offs = match List.assoc_opt name offsets with Some o -> o | None -> [] in
        let plane_offsets =
          List.map (fun (v : int array) -> v.(s)) offs |> List.sort_uniq compare
        in
        let plane_has_inplane o =
          List.exists
            (fun (v : int array) ->
              v.(s) = o
              && Array.exists (fun d -> d <> s && v.(d) <> 0) (Array.init rank Fun.id))
            offs
        in
        let shared, regs =
          if p.retime then
            (* Retimed: only the incoming plane is staged; contributions
               accumulate in registers across the window. *)
            ((if plane_offsets = [] then [] else [ 0 ]), [])
          else
            List.partition plane_has_inplane plane_offsets
        in
        let shared, regs =
          match placement with
          | A.Regs when shared = [] -> ([], regs)
          | A.Regs ->
            (* Registers requested but in-plane offsets force shared. *)
            (shared, regs)
          | _ -> (shared, regs)
        in
        Stage_stream { shared_planes = shared; reg_planes = regs;
                       halo = in_plane_halo rank stream ext })
  in
  (* Folding (Section III-B4): non-leader members of an enabled fold group
     alias the leader's buffer.  Only groups whose leader ends up staged
     (shared or registers) fold; global-read groups gain nothing. *)
  let fold_leader name =
    List.find_map
      (fun (_, members) ->
        match members with
        | leader :: rest when List.mem name rest && Plan.placement_of p leader <> A.Gmem ->
          Some leader
        | _ -> None)
      p.fold
  in
  let read_arrays =
    List.filter (fun (a, _) -> List.mem_assoc a k.arrays) reads
  in
  List.map
    (fun (name, rpp) ->
      {
        array = name;
        staging =
          (match fold_leader name with
           | Some leader -> Stage_fold_member leader
           | None -> staging_for name);
        is_intermediate = List.mem name inter;
        extent =
          (match Hashtbl.find_opt exts name with
           | Some e -> e
           | None -> An.zero_extent rank);
        reads_per_point = rpp;
      })
    read_arrays

(** Shared-memory bytes per block implied by the staging layout. *)
let shared_bytes_per_block (p : Plan.t) (g : geometry) bufs =
  let elem = 8 in
  let plane_elems halo =
    List.fold_left
      (fun acc d ->
        match Plan.stream_dim p with
        | Some s when d = s -> acc
        | _ ->
          let lo, hi = halo.(d) in
          acc * (p.block.(d) * p.unroll.(d) + (hi - lo)))
      1
      (List.init g.rank Fun.id)
  in
  let tile_elems halo =
    List.fold_left
      (fun acc d ->
        let lo, hi = halo.(d) in
        acc * (g.tile.(d) + (hi - lo)))
      1
      (List.init g.rank Fun.id)
  in
  List.fold_left
    (fun acc b ->
      match b.staging with
      | Stage_global | Stage_const | Stage_fold_member _ -> acc
      | Stage_tile { halo } -> acc + (tile_elems halo * elem)
      | Stage_stream { shared_planes; halo; _ } ->
        acc + (List.length shared_planes * plane_elems halo * elem))
    0 bufs

(** Barrier executions per block: streaming needs two per plane step
    (compute / shift, Listing 2); a staged non-streaming kernel needs one
    after the cooperative load. *)
let syncs_per_block (p : Plan.t) (g : geometry) bufs =
  let any_shared =
    List.exists
      (fun b ->
        match b.staging with
        | Stage_tile _ | Stage_stream _ -> true
        | Stage_global | Stage_const | Stage_fold_member _ -> false)
      bufs
  in
  if not any_shared then 0
  else
    match Plan.stream_dim p with
    | None -> 1
    | Some _ -> 2 * g.steps_per_block

(** Number of arrays whose streamed loads can be prefetched (those with at
    least one staged plane). *)
let prefetchable_arrays bufs =
  List.length
    (List.filter
       (fun b ->
         match b.staging with
         | Stage_stream { shared_planes; reg_planes; _ } ->
           shared_planes <> [] || reg_planes <> []
         | Stage_tile _ | Stage_global | Stage_const | Stage_fold_member _ -> false)
       bufs)
