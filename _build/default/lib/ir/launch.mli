(** Launch geometry and staging layout of a plan: tile shapes, halos,
    grid extents, shared/register buffer structure, and synchronization
    counts.  The executor, the analytic counter evaluator, the resource
    estimator, and the CUDA emitter all derive their quantities here, so
    they agree by construction. *)

module An = Artemis_dsl.Analysis

type geometry = {
  rank : int;
  domain : int array;
  tile : int array;  (** output points per block per dimension *)
  grid : int array;  (** blocks per dimension *)
  total_blocks : int;
  interior_lo : int array;  (** first updated index per dimension *)
  interior_hi : int array;  (** last updated index (inclusive) *)
  input_extent : An.extent;  (** union of read extents of pure inputs *)
  steps_per_block : int;  (** plane steps when streaming, else 1 *)
}

(** How the reads of one array are staged inside the kernel. *)
type staging =
  | Stage_global  (** read straight from global memory at each use *)
  | Stage_const
  | Stage_tile of { halo : (int * int) array }
      (** whole halo-extended tile in shared memory (non-streaming) *)
  | Stage_stream of {
      shared_planes : int list;  (** stream-offsets staged as shared planes *)
      reg_planes : int list;  (** stream-offsets in per-thread registers *)
      halo : (int * int) array;  (** in-plane halo *)
    }
  | Stage_fold_member of string
      (** folded into the named leader's buffer (Section III-B4) *)

type buffer = {
  array : string;
  staging : staging;
  is_intermediate : bool;  (** written and re-read within the kernel *)
  extent : An.extent;  (** required read extent *)
  reads_per_point : int;
}

(** Arrays read but never written by the body. *)
val pure_inputs : Artemis_dsl.Instantiate.kernel -> string list

(** Arrays written and re-read (fusion scratch). *)
val intermediates : Artemis_dsl.Instantiate.kernel -> string list

(** Arrays written and never re-read — the kernel's results. *)
val final_outputs : Artemis_dsl.Instantiate.kernel -> string list

val geometry : Plan.t -> geometry

(** Staging layout of every array the kernel reads: with streaming, a
    plane read only at its in-plane center lives in a register (Listing
    2's [in_reg_m1]); retiming collapses shared planes to the incoming
    plane; folding aliases non-leader members. *)
val buffers : Plan.t -> buffer list

val shared_bytes_per_block : Plan.t -> geometry -> buffer list -> int

(** Barrier executions per block: two per plane step when streaming with
    shared staging, one after a cooperative tile load, zero without
    shared memory. *)
val syncs_per_block : Plan.t -> geometry -> buffer list -> int

(** Streamed arrays whose incoming loads prefetching can stage. *)
val prefetchable_arrays : buffer list -> int

(**/**)

val in_plane_halo : int -> int option -> An.extent -> (int * int) array
