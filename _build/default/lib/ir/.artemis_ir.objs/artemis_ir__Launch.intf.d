lib/ir/launch.mli: Artemis_dsl Plan
