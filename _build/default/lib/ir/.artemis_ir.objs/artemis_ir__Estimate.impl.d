lib/ir/estimate.ml: Array Artemis_dsl Artemis_gpu Float Fun Hashtbl Launch List Plan
