lib/ir/validate.mli: Plan
