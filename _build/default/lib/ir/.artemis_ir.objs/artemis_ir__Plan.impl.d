lib/ir/plan.ml: Array Artemis_dsl Artemis_gpu Fun List Printf String
