lib/ir/estimate.mli: Artemis_dsl Artemis_gpu Launch Plan
