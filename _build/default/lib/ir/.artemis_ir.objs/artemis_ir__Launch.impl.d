lib/ir/launch.ml: Array Artemis_dsl Fun Hashtbl List Plan
