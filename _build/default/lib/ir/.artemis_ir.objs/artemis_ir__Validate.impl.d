lib/ir/validate.ml: Array Artemis_gpu Estimate List Plan Printf String
