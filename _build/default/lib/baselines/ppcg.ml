(* PPCG-like baseline (paper, Section VIII-F).

   PPCG is a general polyhedral source-to-source compiler: it spatially
   tiles all dimensions, reads operands from global memory with limited
   staging, fixes thread mappings with generic heuristics, and emits deep
   boundary conditionals.  The paper attributes its losses on complex
   stencils to "inefficient resource assignment heuristics", "poor
   fusion/fission choices, and the complex conditionals in the generated
   code".  The strategy re-implementation mirrors exactly that:

   - always 3-D tiled (no streaming), fixed heuristic block shape;
   - global memory operands (its shared-memory heuristic declines complex
     stencils whose footprints exceed its per-array bound);
   - maximal fusion of the statement DAG (no fission);
   - control overhead from nested boundary conditionals, modelled as an
     ILP penalty and extra instructions;
   - tuned only over block shapes (the paper autotuned PPCG's block sizes,
     unrolling, and register caps; unrolling rarely helped its code). *)

module Plan = Artemis_ir.Plan
module I = Artemis_dsl.Instantiate
module Device = Artemis_gpu.Device
module Analytic = Artemis_exec.Analytic

(* Conditional-overhead model: PPCG's generated guards cost issue slots on
   every statement.  Implemented as a derating of the measured TFLOPS. *)
let conditional_overhead (k : I.kernel) =
  let stmts = List.length k.body in
  (* deeper DAGs generate more guard nesting *)
  1.0 +. (0.06 *. float_of_int (min stmts 12))

let base_plan (device : Device.t) (k : I.kernel) =
  let p = Plan.default device k in
  { p with Plan.max_regs = 128 (* PPCG's default register heuristic *) }

type result = {
  measurement : Analytic.measurement;
  derated_tflops : float;
  explored : int;
}

(** Tune block shapes only, then apply the conditional derating. *)
let tune (device : Device.t) (k : I.kernel) =
  let base = base_plan device k in
  let rank = Plan.rank base in
  let blocks =
    Artemis_tune.Space.block_candidates ~rank ~scheme:Plan.Tiled
      ~max_threads:device.max_threads_per_block
  in
  let explored = ref 0 in
  let best =
    List.fold_left
      (fun acc block ->
        match Analytic.try_measure { base with Plan.block } with
        | Some m ->
          incr explored;
          (match acc with
           | Some (a : Analytic.measurement) when a.tflops >= m.tflops -> acc
           | Some _ | None -> Some m)
        | None -> acc)
      None blocks
  in
  Option.map
    (fun (m : Analytic.measurement) ->
      {
        measurement = m;
        derated_tflops = m.tflops /. conditional_overhead k;
        explored = !explored;
      })
    best
