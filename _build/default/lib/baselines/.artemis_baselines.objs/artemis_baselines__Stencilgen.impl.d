lib/baselines/stencilgen.ml: Array Artemis_codegen Artemis_dsl Artemis_exec Artemis_gpu Artemis_ir Artemis_tune List Printf
