lib/baselines/ppcg.ml: Artemis_dsl Artemis_exec Artemis_gpu Artemis_ir Artemis_tune List Option
