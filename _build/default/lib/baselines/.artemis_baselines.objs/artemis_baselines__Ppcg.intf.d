lib/baselines/ppcg.mli: Artemis_dsl Artemis_exec Artemis_gpu Artemis_ir
