lib/baselines/stencilgen.mli: Artemis_dsl Artemis_exec Artemis_gpu Artemis_ir
