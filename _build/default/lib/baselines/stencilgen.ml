(* STENCILGEN-like baseline (paper, Sections VIII-F and IX).

   STENCILGEN is the strongest prior stencil code generator the paper
   compares against.  Its strategy, per the paper:

   - serial streaming along the slowest dimension with shared-memory
     plane windows — the one framework besides ARTEMIS that automates it;
   - time tiling (fusion) with associative reordering (retiming), applied
     when the statements are amenable;
   - all optimizations applied simultaneously — no bottleneck analysis;
   - NO loop unrolling, prefetching, concurrent streaming, or thread-block
     load/compute adjustment (the paper credits ARTEMIS's iterative wins
     exactly to these);
   - no support for domains of different dimensionality within one stencil
     function (it "could not generate code for the kernels from SW4lite"),
     reported here as [Unsupported]. *)

module A = Artemis_dsl.Ast
module An = Artemis_dsl.Analysis
module I = Artemis_dsl.Instantiate
module Plan = Artemis_ir.Plan
module Device = Artemis_gpu.Device
module Analytic = Artemis_exec.Analytic
module Options = Artemis_codegen.Options
module Lower = Artemis_codegen.Lower
module Retime = Artemis_codegen.Retime

type outcome =
  | Tuned of Analytic.measurement * int  (** best, configurations explored *)
  | Unsupported of string

(* STENCILGEN rejects kernels mixing domain dimensionalities (e.g. SW4's
   1-D stretching arrays alongside 3-D fields). *)
let mixed_dimensionality (k : I.kernel) =
  let ranks =
    List.map (fun (_, dims) -> Array.length dims) k.arrays |> List.sort_uniq compare
  in
  List.length ranks > 1

let base_plan (device : Device.t) (k : I.kernel) =
  let opts =
    {
      Options.default with
      Options.scheme = Options.Force_stream (Some 0);
      use_shared = true;
      retime = true;
      honor_user_assign = false;  (* no user-guided assignment in STENCILGEN *)
      prefetch = false;
    }
  in
  Lower.lower device k opts

(** Tune the STENCILGEN strategy: block shapes only (its tuning axes are
    fusion degree and block dims; fusion is the caller's axis). *)
let tune (device : Device.t) (k : I.kernel) =
  if mixed_dimensionality k then
    Unsupported
      (Printf.sprintf
         "%s mixes domain dimensionalities within one stencil function" k.kname)
  else begin
    let base = base_plan device k in
    let rank = Plan.rank base in
    let blocks =
      Artemis_tune.Space.block_candidates ~rank ~scheme:base.scheme
        ~max_threads:device.max_threads_per_block
    in
    let explored = ref 0 in
    let best =
      List.fold_left
        (fun acc block ->
          (* STENCILGEN compiles at the full register budget. *)
          match Analytic.try_measure { base with Plan.block; max_regs = 255 } with
          | Some m ->
            incr explored;
            (match acc with
             | Some (a : Analytic.measurement) when a.tflops >= m.tflops -> acc
             | Some _ | None -> Some m)
          | None -> acc)
        None blocks
    in
    match best with
    | Some m -> Tuned (m, !explored)
    | None -> Unsupported "no valid configuration"
  end
