(** PPCG-like baseline (paper, Section VIII-F): a general polyhedral
    compiler's strategy — 3-D spatial tiling with generic heuristics,
    global-memory operands, maximal fusion, a conservative register cap,
    and deep boundary conditionals (modelled as a performance derating).
    The paper attributes PPCG's losses on complex stencils to exactly
    these. *)

type result = {
  measurement : Artemis_exec.Analytic.measurement;
  derated_tflops : float;  (** after the conditional-overhead factor *)
  explored : int;
}

(** Multiplicative issue-slot cost of the generated guards (grows with
    DAG depth). *)
val conditional_overhead : Artemis_dsl.Instantiate.kernel -> float

val base_plan :
  Artemis_gpu.Device.t -> Artemis_dsl.Instantiate.kernel -> Artemis_ir.Plan.t

(** Tune block shapes only; [None] when nothing launches. *)
val tune :
  Artemis_gpu.Device.t -> Artemis_dsl.Instantiate.kernel -> result option
