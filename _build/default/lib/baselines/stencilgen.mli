(** STENCILGEN-like baseline (paper, Sections VIII-F and IX): the
    strongest prior stencil generator the paper compares against.

    Strategy, per the paper: serial streaming with shared-memory plane
    windows, fusion with associative reordering (retiming), every
    optimization applied simultaneously with no bottleneck analysis, and
    no loop unrolling, prefetching, concurrent streaming, or load/compute
    adjustment.  It rejects stencil functions mixing domain
    dimensionalities (which is why it "could not generate code for the
    kernels from SW4lite"). *)

type outcome =
  | Tuned of Artemis_exec.Analytic.measurement * int
      (** best measurement, configurations explored *)
  | Unsupported of string

(** Kernels mixing array ranks within one stencil function. *)
val mixed_dimensionality : Artemis_dsl.Instantiate.kernel -> bool

(** The STENCILGEN strategy's base plan for a kernel. *)
val base_plan :
  Artemis_gpu.Device.t -> Artemis_dsl.Instantiate.kernel -> Artemis_ir.Plan.t

(** Tune the strategy over block shapes. *)
val tune : Artemis_gpu.Device.t -> Artemis_dsl.Instantiate.kernel -> outcome
