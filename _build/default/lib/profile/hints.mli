(** The Section IV-A guideline engine: bottleneck profiles become
    concrete optimization decisions (pruning the autotuner) and textual
    hints for the user. *)

type decisions = {
  enable_shared : bool;  (** stage arrays in shared memory *)
  enable_unroll : bool;
  enable_register_opts : bool;  (** retiming / folding / register caching *)
  explore_fusion : bool;  (** iterative stencils: deeper time tile *)
  explore_fission : bool;  (** register pressure: emit fission candidates *)
  prefer_global : bool;  (** tune the global-memory version instead *)
}

val default_decisions : decisions

(** Apply the guidelines to a measured and classified kernel;
    [iterative] marks time-iterated stencils. *)
val decide :
  iterative:bool -> Artemis_exec.Analytic.measurement -> Classify.profile ->
  decisions

type hint = {
  severity : [ `Info | `Advice ];
  text : string;
}

(** Human-readable hints mirroring the Section IV-A bullets. *)
val hints :
  iterative:bool -> Artemis_exec.Analytic.measurement -> Classify.profile ->
  hint list
