(* Optimization report generation: the human-readable account of what
   ARTEMIS did to a kernel — the "textual output" of Section VII turned
   into a structured artifact.  The CLI writes it next to the generated
   CUDA; tests check its stability. *)

module An = Artemis_dsl.Analysis
module I = Artemis_dsl.Instantiate
module Plan = Artemis_ir.Plan
module Estimate = Artemis_ir.Estimate
module Analytic = Artemis_exec.Analytic
module C = Artemis_gpu.Counters
module Timing = Artemis_gpu.Timing

type t = {
  kernel : I.kernel;
  baseline : Analytic.measurement;
  baseline_profile : Classify.profile;
  tuned : Analytic.measurement;
  tuned_profile : Classify.profile;
  hints : Hints.hint list;
  explored : int;
  history : (string * float) list;  (** best-first tuning trace *)
}

let line buf fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    fmt

let section buf title =
  Buffer.add_string buf "\n";
  Buffer.add_string buf title;
  Buffer.add_string buf "\n";
  Buffer.add_string buf (String.make (String.length title) '-');
  Buffer.add_string buf "\n"

let render_measurement buf label (m : Analytic.measurement) (prof : Classify.profile) =
  section buf label;
  line buf "plan            : %s" (Plan.label m.plan);
  line buf "performance     : %.3f TFLOPS (%.3e s)" m.tflops m.time_s;
  line buf "bottleneck      : %s" (Classify.verdict_to_string prof.verdict);
  line buf "OI dram/tex/shm : %.2f / %.2f / %.2f (knees %.2f / %.2f / %.2f)"
    prof.oi_dram prof.oi_tex prof.oi_shm prof.knee_dram prof.knee_tex prof.knee_shm;
  line buf "occupancy       : %.3f (%d blocks/SM, limited by %s)"
    m.resources.occupancy.occupancy m.resources.occupancy.blocks_per_sm
    (Artemis_gpu.Occupancy.limiter_to_string m.resources.occupancy.limiter);
  line buf "registers       : %d estimated, %d effective%s"
    m.resources.regs_per_thread m.resources.effective_regs
    (if m.resources.spilled_doubles > 0 then
       Printf.sprintf " (%d doubles spilled)" m.resources.spilled_doubles
     else " (spill-free)");
  line buf "shared memory   : %d B/block" m.resources.shared_per_block;
  line buf "redundancy      : %.3fx recomputation from overlapped tiling"
    (C.redundancy m.counters);
  line buf "timing pipes    : compute %.2e, dram %.2e, tex %.2e, shm %.2e, sync %.2e s"
    m.breakdown.t_compute m.breakdown.t_dram m.breakdown.t_tex m.breakdown.t_shm
    m.breakdown.t_sync

(** Render the full report as text. *)
let render (r : t) =
  let buf = Buffer.create 2048 in
  let k = r.kernel in
  line buf "ARTEMIS optimization report — kernel %s" k.kname;
  section buf "stencil";
  line buf "domain          : %s"
    (String.concat " x " (Array.to_list (Array.map string_of_int k.domain)));
  line buf "statements      : %d" (List.length k.body);
  line buf "stencil order   : %d" (An.stencil_order k);
  line buf "flops per point : %d" (An.flops_per_point k);
  line buf "IO arrays       : %d" (An.io_array_count k);
  line buf "theoretical OI  : %.3f flops/byte" (An.theoretical_oi k);
  line buf "recompute halo  : %d" (An.recompute_halo k);
  render_measurement buf "baseline (from pragma)" r.baseline r.baseline_profile;
  render_measurement buf "tuned" r.tuned r.tuned_profile;
  section buf "tuning";
  line buf "configurations measured : %d" r.explored;
  line buf "speedup over baseline   : %.2fx"
    (if r.baseline.tflops > 0.0 then r.tuned.tflops /. r.baseline.tflops else 0.0);
  (match r.history with
   | [] -> ()
   | history ->
     line buf "top configurations:" ;
     List.iteri
       (fun i (label, tflops) ->
         if i < 8 then line buf "  %5.3f TFLOPS  %s" tflops label)
       history);
  if r.hints <> [] then begin
    section buf "hints";
    List.iter
      (fun (h : Hints.hint) ->
        line buf "[%s] %s"
          (match h.severity with `Info -> "info" | `Advice -> "advice")
          h.text)
      r.hints
  end;
  Buffer.contents buf
