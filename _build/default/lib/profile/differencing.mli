(** Code differencing (paper, Section IV, Listings 2-3).

    To decide whether a near-roofline kernel is really bandwidth-bound at
    level M, generate a variant V' whose accesses to M are drastically
    reduced — Listing 3 confines every global array to one block-sized
    footprint — and compare simulated times.  A significant speedup of
    V' convicts M. *)

type result = {
  original_time : float;
  reduced_time : float;
  speedup : float;
  bound : bool;  (** the level was the bottleneck *)
}

(** Speedup factor required to declare the level the bottleneck. *)
val threshold : float

(** Run the differencing experiment for one level on a measured plan. *)
val test : Artemis_exec.Analytic.measurement -> Classify.level -> result

(** Resolve an [Ambiguous] verdict by differencing at the ambiguous
    level; other verdicts pass through unchanged. *)
val resolve :
  Artemis_exec.Analytic.measurement -> Classify.profile -> Classify.profile
