lib/profile/hints.ml: Artemis_exec Artemis_ir Classify List
