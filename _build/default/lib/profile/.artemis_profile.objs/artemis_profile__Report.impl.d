lib/profile/report.ml: Array Artemis_dsl Artemis_exec Artemis_gpu Artemis_ir Buffer Classify Hints List Printf String
