lib/profile/differencing.ml: Artemis_exec Artemis_gpu Artemis_ir Classify Float
