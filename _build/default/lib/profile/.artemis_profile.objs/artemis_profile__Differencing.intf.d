lib/profile/differencing.mli: Artemis_exec Classify
