lib/profile/classify.ml: Artemis_gpu Format List String
