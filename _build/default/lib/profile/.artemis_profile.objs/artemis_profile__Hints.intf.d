lib/profile/hints.mli: Artemis_exec Classify
