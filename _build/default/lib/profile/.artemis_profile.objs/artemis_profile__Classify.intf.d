lib/profile/classify.mli: Artemis_gpu Format
