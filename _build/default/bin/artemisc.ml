(* artemisc — the ARTEMIS command-line driver.

   Subcommands mirror the Section VII flow:

     artemisc compile  prog.stc     # baseline CUDA from the DSL pragma
     artemisc optimize prog.stc     # profile -> tune -> hints -> CUDA
     artemisc deep     prog.stc     # deep tuning of an iterative program
     artemisc check    prog.stc     # parse + semantic check only
     artemisc bench <name>          # run one suite benchmark end to end *)

open Cmdliner

let read_program path =
  try `Ok (Artemis.parse_file path) with
  | Artemis.Parser.Parse_error (msg, line) ->
    `Error (false, Printf.sprintf "%s:%d: syntax error: %s" path line msg)
  | Artemis.Check.Semantic_error msg ->
    `Error (false, Printf.sprintf "%s: semantic error: %s" path msg)
  | Sys_error msg -> `Error (false, msg)

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.stc"
         ~doc:"Stencil DSL program")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write generated CUDA to $(docv) instead of stdout")

let write_output out text =
  match out with
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> print_string text

(* ---------------- check ---------------- *)

let check_cmd =
  let run path =
    match read_program path with
    | `Ok prog ->
      let n_kernels = Artemis.Instantiate.launch_count (Artemis.Instantiate.schedule prog) in
      Printf.printf "%s: OK (%d stencil(s), %d launch(es))\n" path
        (List.length prog.stencils) n_kernels;
      `Ok ()
    | `Error _ as e -> e
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and semantically check a DSL program")
    Term.(ret (const run $ path_arg))

(* ---------------- compile ---------------- *)

let compile_cmd =
  let run path out =
    match read_program path with
    | `Ok prog ->
      let k = Artemis.first_kernel prog in
      let plan =
        Artemis.Lower.lower_with_pragma Artemis.Device.p100 k Artemis.Options.default
      in
      Artemis.Validate.check plan;
      write_output out (Artemis.Cuda.emit plan);
      `Ok ()
    | `Error _ as e -> e
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Generate the baseline CUDA version from the program's pragma")
    Term.(ret (const run $ path_arg $ out_arg))

(* ---------------- optimize ---------------- *)

let optimize_cmd =
  let iterative =
    Arg.(value & flag & info [ "iterative" ]
           ~doc:"Apply the fusion guideline for time-iterated stencils")
  in
  let run path out iterative =
    match read_program path with
    | `Ok prog ->
      let k = Artemis.first_kernel prog in
      let r = Artemis.optimize_kernel ~iterative k in
      Printf.printf "baseline : %.3f TFLOPS  [%s]\n" r.baseline.tflops
        (Artemis.Classify.verdict_to_string r.baseline_profile.verdict);
      Printf.printf "tuned    : %.3f TFLOPS  %s\n" r.tuned.tflops
        (Artemis.Plan.label r.tuned.plan);
      Printf.printf "explored : %d configurations\n" r.explored;
      List.iter
        (fun (h : Artemis.Hints.hint) ->
          Printf.printf "%s: %s\n"
            (match h.severity with `Info -> "info" | `Advice -> "hint")
            h.text)
        r.hints;
      List.iteri
        (fun i parts ->
          let name = if i = 0 then "trivial" else "recompute" in
          Printf.printf "fission candidate (%s): %d sub-kernels\n" name
            (List.length parts);
          let dsl = Artemis.Fission.to_dsl k parts in
          let path = Printf.sprintf "%s.%s-fission.stc" path name in
          let oc = open_out path in
          output_string oc (Artemis.Pretty.program_to_string dsl);
          close_out oc;
          Printf.printf "  wrote %s\n" path)
        r.fission_candidates;
      let report_path = path ^ ".report.txt" in
      let oc = open_out report_path in
      output_string oc (Artemis.report_of r);
      close_out oc;
      Printf.printf "wrote %s\n" report_path;
      write_output out (Artemis.cuda_of r);
      `Ok ()
    | `Error _ as e -> e
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Profile, hierarchically autotune, and emit the best CUDA version")
    Term.(ret (const run $ path_arg $ out_arg $ iterative))

(* ---------------- deep ---------------- *)

let deep_cmd =
  let iterations =
    Arg.(value & opt (some int) None & info [ "T"; "iterations" ] ~docv:"T"
           ~doc:"Build the fusion schedule for $(docv) iterations instead of \
                 the program's own count")
  in
  let run path iterations =
    match read_program path with
    | `Ok prog -> (
      try
        let dr = Artemis.deep_tune prog in
        List.iter
          (fun (v : Artemis.Deep.version) ->
            Printf.printf "(%dx1): %.3f TFLOPS  [%s]\n" v.time_tile
              v.record.best.tflops
              (Artemis.Classify.verdict_to_string v.profile.verdict))
          dr.deep.versions;
        let schedule, time =
          match iterations with
          | Some t -> Artemis.Deep.optimal_schedule dr.deep ~t
          | None -> (dr.schedule, dr.predicted_time)
        in
        Printf.printf "fusion schedule: [%s]  (predicted %.3e s)\n"
          (String.concat "; " (List.map string_of_int schedule))
          time;
        `Ok ()
      with Invalid_argument msg -> `Error (false, msg))
    | `Error _ as e -> e
  in
  Cmd.v
    (Cmd.info "deep"
       ~doc:"Deep-tune an iterative ping-pong program (Section VI-A)")
    Term.(ret (const run $ path_arg $ iterations))

(* ---------------- bench ---------------- *)

let bench_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK"
           ~doc:"Suite benchmark name (see 'artemisc list')")
  in
  let run name =
    match Artemis.Suite.find name with
    | exception Invalid_argument msg -> `Error (false, msg)
    | b ->
      let ks = Artemis.Suite.kernels b in
      List.iter
        (fun k ->
          let r = Artemis.optimize_kernel ~iterative:b.iterative k in
          Printf.printf "%s: %.3f TFLOPS  %s\n" k.Artemis.Instantiate.kname
            r.tuned.tflops (Artemis.Plan.label r.tuned.plan))
        ks;
      `Ok ()
  in
  Cmd.v (Cmd.info "bench" ~doc:"Optimize one Table-I benchmark end to end")
    Term.(ret (const run $ name_arg))

let list_cmd =
  let run () =
    List.iter
      (fun (b : Artemis.Suite.t) ->
        Printf.printf "%-14s %s, %d^3%s\n" b.name
          (Artemis.Suite.family_to_string b.family)
          b.domain
          (if b.iterative then Printf.sprintf ", %d iterations" b.time_steps else ""))
      Artemis.Suite.all;
    `Ok ()
  in
  Cmd.v (Cmd.info "list" ~doc:"List the Table-I benchmarks")
    Term.(ret (const run $ const ()))

let () =
  let info =
    Cmd.info "artemisc" ~version:Artemis.version
      ~doc:"ARTEMIS stencil code generator (OCaml reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ check_cmd; compile_cmd; optimize_cmd; deep_cmd;
                                   bench_cmd; list_cmd ]))
