(* Traffic-accounting invariants: physically necessary inequalities that
   must hold for every plan, and directional properties the paper's
   analysis depends on (fusion reduces DRAM traffic, staging reduces
   texture traffic, spills add DRAM traffic, folding removes FLOPs). *)

module A = Artemis_dsl.Ast
module Plan = Artemis_ir.Plan
module E = Artemis_exec
module C = Artemis_gpu.Counters
module Suite = Artemis_bench.Suite
module O = Artemis_codegen.Options
module Lower = Artemis_codegen.Lower

let case name f = Alcotest.test_case name `Quick f
let dev = Artemis_gpu.Device.p100

let counters_of ?(size = 32) bname opts =
  let b = Suite.at_size size (Suite.find bname) in
  let k = List.hd (Suite.kernels b) in
  let p = Util.valid_lower k opts in
  (E.Analytic.measure p, k)

let invariants (m : E.Analytic.measurement) =
  let c = m.counters in
  let k = m.plan.kernel in
  let domain_pts =
    Array.fold_left (fun acc d -> acc *. float_of_int d) 1.0 k.domain
  in
  Alcotest.(check bool) "useful <= total flops" true
    (c.useful_flops <= c.total_flops +. 1e-6);
  Alcotest.(check bool) "useful flops positive" true (c.useful_flops > 0.0);
  (* useful flops cannot exceed flops/point x domain *)
  let fpp = float_of_int (Artemis_dsl.Analysis.flops_per_point k) in
  Alcotest.(check bool) "useful bounded by domain" true
    (c.useful_flops <= (fpp *. domain_pts) +. 1e-6);
  Alcotest.(check bool) "tex >= 32B x transactions" true
    (c.tex_bytes >= 32.0 *. (c.gld_transactions +. c.gst_transactions) -. 1e-6);
  (* DRAM cannot exceed the global-space traffic *)
  Alcotest.(check bool) "dram <= tex traffic" true (c.dram_bytes <= c.tex_bytes +. 1e-6);
  (* compulsory traffic: every output must be written once *)
  Alcotest.(check bool) "stores cover outputs" true (c.gst_transactions > 0.0);
  Alcotest.(check bool) "non-negative" true
    (c.shm_bytes >= 0.0 && c.spill_bytes >= 0.0 && c.syncs >= 0.0)

let tests =
  ( "traffic",
    [
      case "invariants hold across benchmarks and plans" (fun () ->
          List.iter
            (fun bname ->
              List.iter
                (fun opts -> invariants (fst (counters_of bname opts)))
                [ O.default; O.global_tiled; O.global_stream;
                  { O.default with O.prefetch = true };
                  { O.default with O.retime = true } ])
            [ "7pt-smoother"; "27pt-smoother"; "hypterm"; "rhs4center" ]);
      case "staging reduces texture traffic" (fun () ->
          let shm, _ = counters_of "7pt-smoother" O.default in
          let glob, _ = counters_of "7pt-smoother" O.global_stream in
          Alcotest.(check bool) "tex bytes drop" true
            (shm.counters.tex_bytes < glob.counters.tex_bytes));
      case "staging adds shared traffic" (fun () ->
          let shm, _ = counters_of "7pt-smoother" O.default in
          let glob, _ = counters_of "7pt-smoother" O.global_stream in
          Alcotest.(check bool) "shm bytes appear" true
            (shm.counters.shm_bytes > 0.0 && glob.counters.shm_bytes = 0.0));
      case "temporal fusion reduces DRAM bytes per sweep" (fun () ->
          let b = Suite.at_size 64 (Suite.find "7pt-smoother") in
          let k = List.hd (Suite.kernels b) in
          let fused f = Artemis_fuse.Fusion.time_fuse k ~out:"out" ~inp:"in" ~f in
          let dram_per_sweep f =
            let p = Lower.lower dev (fused f) O.default in
            (E.Analytic.measure p).counters.dram_bytes /. float_of_int f
          in
          Alcotest.(check bool) "2x1 < 1x1" true (dram_per_sweep 2 < dram_per_sweep 1);
          Alcotest.(check bool) "3x1 < 2x1" true (dram_per_sweep 3 < dram_per_sweep 2));
      case "temporal fusion raises redundancy" (fun () ->
          let b = Suite.at_size 64 (Suite.find "7pt-smoother") in
          let k = List.hd (Suite.kernels b) in
          let red f =
            let fused = Artemis_fuse.Fusion.time_fuse k ~out:"out" ~inp:"in" ~f in
            let p = Lower.lower dev fused O.default in
            C.redundancy (E.Analytic.measure p).counters
          in
          Alcotest.(check bool) "monotone" true (red 3 > red 2 && red 2 > red 1));
      case "retiming reduces shared loads for 27pt" (fun () ->
          let plain, _ = counters_of "27pt-smoother" O.default in
          let ret, _ = counters_of "27pt-smoother" { O.default with O.retime = true } in
          Alcotest.(check bool) "fewer shm loads" true
            (ret.counters.shm_ld < plain.counters.shm_ld));
      case "retiming shrinks the shared footprint of 27pt" (fun () ->
          let plain, _ = counters_of "27pt-smoother" O.default in
          let ret, _ = counters_of "27pt-smoother" { O.default with O.retime = true } in
          Alcotest.(check bool) "smaller buffers" true
            (ret.resources.shared_per_block < plain.resources.shared_per_block));
      case "spills charge DRAM traffic" (fun () ->
          let b = Suite.at_size 32 (Suite.find "rhs4sgcurv") in
          let k = List.hd (Suite.kernels b) in
          let p = Util.valid_lower k O.default in
          let m = E.Analytic.measure p in
          Alcotest.(check bool) "spilling" true (m.resources.spilled_doubles > 0);
          Alcotest.(check bool) "spill bytes" true (m.counters.spill_bytes > 0.0));
      case "smaller blocks mean more redundant staged loads" (fun () ->
          let small, _ =
            counters_of "rhs4center" { O.default with O.block = Some [| 1; 8; 8 |] }
          in
          let big, _ =
            counters_of "rhs4center" { O.default with O.block = Some [| 1; 16; 16 |] }
          in
          Alcotest.(check bool) "more gld" true
            (small.counters.gld_transactions > big.counters.gld_transactions));
      case "folding removes executed FLOPs but not useful ones" (fun () ->
          let prog =
            Artemis_dsl.Parser.parse_program
              {|parameter L=16; iterator k, j, i;
                double p[L,L,L], q[L,L,L], o[L,L,L];
                stencil s0 (O, P, Q) {
                  O[k][j][i] = P[k][j][i+1]*Q[k][j][i+1] + P[k][j][i-1]*Q[k][j][i-1]
                    + P[k][j+1][i]*Q[k][j+1][i] + P[k][j-1][i]*Q[k][j-1][i];
                }
                s0 (o, p, q);|}
          in
          Artemis_dsl.Check.check prog;
          let k =
            match Artemis_dsl.Instantiate.schedule prog with
            | [ Artemis_dsl.Instantiate.Launch k ] -> k
            | _ -> assert false
          in
          let plain = E.Analytic.measure (Lower.lower dev k O.default) in
          let folded =
            E.Analytic.measure (Lower.lower dev k { O.default with O.fold = true })
          in
          Alcotest.(check bool) "fold enabled" true (folded.plan.fold <> []);
          Alcotest.(check bool) "fewer executed flops" true
            (folded.counters.total_flops < plain.counters.total_flops);
          Alcotest.(check (float 1.0)) "same useful flops"
            plain.counters.useful_flops folded.counters.useful_flops;
          Alcotest.(check bool) "fewer shared loads" true
            (folded.counters.shm_ld < plain.counters.shm_ld));
      case "output perspective pays extra boundary sectors vs mixed" (fun () ->
          (* Qualitative: mixed perspective never issues more load
             transactions than output perspective on the same shape. *)
          let outp, _ = counters_of "7pt-smoother" O.default in
          let mixed, _ =
            counters_of "7pt-smoother"
              { O.default with O.perspective = Plan.Mixed_persp }
          in
          Alcotest.(check bool) "mixed <= output" true
            (mixed.counters.gld_transactions <= outp.counters.gld_transactions +. 1e-6));
    ] )
