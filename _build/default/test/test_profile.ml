(* Profiler tests: roofline classification, code differencing, and the
   Section IV-A guideline decisions. *)

module C = Artemis_gpu.Counters
module Classify = Artemis_profile.Classify
module Differencing = Artemis_profile.Differencing
module Hints = Artemis_profile.Hints
module E = Artemis_exec
module O = Artemis_codegen.Options
module Lower = Artemis_codegen.Lower
module Suite = Artemis_bench.Suite

let case name f = Alcotest.test_case name `Quick f
let dev = Artemis_gpu.Device.p100

let measure ?(size = 64) bname opts =
  let b = Suite.at_size size (Suite.find bname) in
  let k = List.hd (Suite.kernels b) in
  E.Analytic.measure (Util.valid_lower k opts)

let classify (m : E.Analytic.measurement) =
  Classify.classify dev m.counters ~time_s:m.time_s

let tests =
  ( "profile",
    [
      case "synthetic dram-bound kernel classified" (fun () ->
          let c =
            { C.zero with total_flops = 1e9; useful_flops = 1e9; dram_bytes = 1e10;
              tex_bytes = 1e10 }
          in
          let prof = Classify.classify dev c ~time_s:(1e10 /. dev.dram_bw) in
          Alcotest.(check bool) "dram bound" true
            (Classify.is_bandwidth_bound_at prof Classify.Dram));
      case "synthetic compute-bound kernel classified" (fun () ->
          let c =
            { C.zero with total_flops = 1e12; useful_flops = 1e12; dram_bytes = 1e9;
              tex_bytes = 1e9; shm_bytes = 1e9 }
          in
          let prof = Classify.classify dev c ~time_s:(1e12 /. dev.peak_dp_flops) in
          Alcotest.(check bool) "compute bound" true
            (prof.verdict = Classify.Compute_bound));
      case "slow kernel with low OI everywhere is latency bound" (fun () ->
          let c =
            { C.zero with total_flops = 1e9; useful_flops = 1e9; dram_bytes = 1e8;
              tex_bytes = 1e8; shm_bytes = 1e8 }
          in
          (* 10x slower than any pipe explains *)
          let prof = Classify.classify dev c ~time_s:(1e9 /. dev.peak_dp_flops *. 10.0) in
          Alcotest.(check bool) "latency bound" true
            (prof.verdict = Classify.Latency_bound));
      case "7pt global version is bandwidth bound (Table III logic)" (fun () ->
          let m = measure "7pt-smoother" O.global_stream in
          let prof = classify m in
          match prof.verdict with
          | Classify.Bandwidth_bound _ -> ()
          | v -> Alcotest.failf "expected bandwidth bound, got %s"
                   (Classify.verdict_to_string v));
      case "differencing: reducing the binding level speeds it up" (fun () ->
          let m = measure "7pt-smoother" O.global_stream in
          let prof = classify m in
          match prof.verdict with
          | Classify.Bandwidth_bound (level :: _) ->
            let r = Differencing.test m level in
            Alcotest.(check bool) "speedup" true (r.bound && r.speedup > 1.1)
          | _ -> Alcotest.fail "expected a bandwidth-bound level");
      case "differencing: reducing a non-binding level does nothing" (fun () ->
          let m = measure "7pt-smoother" O.global_stream in
          (* shared memory is unused in the global version *)
          let r = Differencing.test m Classify.Shm in
          Alcotest.(check bool) "no speedup" false r.bound);
      case "differencing resolves ambiguity" (fun () ->
          let m = measure "7pt-smoother" O.global_stream in
          let prof = classify m in
          let forced = { prof with Classify.verdict = Classify.Ambiguous Classify.Dram } in
          let resolved = Differencing.resolve m forced in
          Alcotest.(check bool) "not ambiguous anymore" true
            (match resolved.verdict with Classify.Ambiguous _ -> false | _ -> true));
      case "guidelines: compute-bound disables shared and unroll" (fun () ->
          let m = measure "7pt-smoother" O.default in
          let prof =
            { (classify m) with Classify.verdict = Classify.Compute_bound }
          in
          let d = Hints.decide ~iterative:false m prof in
          Alcotest.(check bool) "no shared" false d.enable_shared;
          Alcotest.(check bool) "no unroll" false d.enable_unroll);
      case "guidelines: bandwidth-bound iterative explores fusion" (fun () ->
          let m = measure "7pt-smoother" O.default in
          let prof =
            { (classify m) with
              Classify.verdict = Classify.Bandwidth_bound [ Classify.Tex ] }
          in
          let d = Hints.decide ~iterative:true m prof in
          Alcotest.(check bool) "fusion" true d.explore_fusion);
      case "guidelines: register pressure disables unroll, explores fission"
        (fun () ->
          let m = measure ~size:32 "rhs4sgcurv" O.default in
          let prof = classify m in
          let d = Hints.decide ~iterative:false m prof in
          Alcotest.(check bool) "no unroll" false d.enable_unroll;
          Alcotest.(check bool) "fission" true d.explore_fission);
      case "guidelines: dram-bound spatial with shared prefers global" (fun () ->
          let m = measure "hypterm" O.default in
          let prof =
            { (classify m) with
              Classify.verdict = Classify.Bandwidth_bound [ Classify.Dram ] }
          in
          let d = Hints.decide ~iterative:false m prof in
          Alcotest.(check bool) "prefer global" true d.prefer_global);
      case "hints are textual and non-empty under pressure" (fun () ->
          let m = measure ~size:32 "rhs4sgcurv" O.default in
          let prof = classify m in
          let hints = Hints.hints ~iterative:false m prof in
          Alcotest.(check bool) "has hints" true (hints <> []));
    ] )
