(* Parser unit tests: concrete syntax, pragma clauses, #assign, errors,
   and pretty-printer round-trips. *)

open Artemis_dsl
module A = Ast

let case name f = Alcotest.test_case name `Quick f

let jacobi_src =
  {|
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin out, in, h2inv, a, b;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
|}

let parse = Parser.parse_program

let expr = Parser.parse_expr_string

let tests =
  ( "parser",
    [
      case "listing 1 parses" (fun () ->
          let p = parse jacobi_src in
          Alcotest.(check int) "params" 3 (List.length p.params);
          Alcotest.(check (list string)) "iters" [ "k"; "j"; "i" ] p.iters;
          Alcotest.(check int) "decls" 5 (List.length p.decls);
          Alcotest.(check (list string)) "copyin"
            [ "out"; "in"; "h2inv"; "a"; "b" ] p.copyin;
          Alcotest.(check int) "stencils" 1 (List.length p.stencils);
          Alcotest.(check (list string)) "copyout" [ "out" ] p.copyout);
      case "pragma fields" (fun () ->
          let p = parse jacobi_src in
          let st = List.hd p.stencils in
          Alcotest.(check (option string)) "stream" (Some "k") st.pragma.stream_dim;
          Alcotest.(check (option (list int))) "block" (Some [ 32; 16 ]) st.pragma.block;
          Alcotest.(check bool) "unroll" true (st.pragma.unroll = [ ("j", 2) ]));
      case "occupancy clause" (fun () ->
          let p =
            parse
              {|iterator k, j, i; double a[4,4,4];
                #pragma occupancy 0.5
                stencil s0 (x) { x[k][j][i] = x[k][j][i]; }
                s0 (a);|}
          in
          let st = List.hd p.stencils in
          Alcotest.(check (option (float 1e-9))) "occupancy" (Some 0.5)
            st.pragma.occupancy);
      case "#assign clauses" (fun () ->
          let p =
            parse
              {|iterator k, j, i; double u[4,4,4], v[4,4,4], w[4,4,4];
                stencil s0 (x, y, z) {
                  #assign shmem (y, z), gmem (x);
                  x[k][j][i] = y[k][j][i] + z[k][j][i];
                }
                s0 (u, v, w);|}
          in
          let st = List.hd p.stencils in
          Alcotest.(check bool) "assign" true
            (st.assign = [ (A.Shmem, [ "y"; "z" ]); (A.Gmem, [ "x" ]) ]));
      case "iterate with swap" (fun () ->
          let p =
            parse
              {|iterator k, j, i; double u[4,4,4], v[4,4,4];
                stencil s0 (x, y) { x[k][j][i] = y[k][j][i]; }
                iterate 12 { s0 (u, v); swap (u, v); }|}
          in
          match p.main with
          | [ A.Iterate (12, [ A.Apply ("s0", [ "u"; "v" ]); A.Swap ("u", "v") ]) ] -> ()
          | _ -> Alcotest.fail "unexpected main structure");
      case "accumulation statement" (fun () ->
          let p =
            parse
              {|iterator k, j, i; double u[4,4,4], v[4,4,4];
                stencil s0 (x, y) { x[k][j][i] = y[k][j][i]; x[k][j][i] += y[k+1][j][i]; }
                s0 (u, v);|}
          in
          match (List.hd p.stencils).body with
          | [ A.Assign _; A.Accum _ ] -> ()
          | _ -> Alcotest.fail "expected assign then accum");
      case "negative and constant indices" (fun () ->
          match expr "A[0][j-2][i]" with
          | A.Access ("A", [ i0; i1; i2 ]) ->
            Alcotest.(check bool) "const" true (i0 = { A.iter = None; shift = 0 });
            Alcotest.(check bool) "j-2" true (i1 = { A.iter = Some "j"; shift = -2 });
            Alcotest.(check bool) "i" true (i2 = { A.iter = Some "i"; shift = 0 })
          | _ -> Alcotest.fail "expected access");
      case "operator precedence" (fun () ->
          match expr "a + b * cc" with
          | A.Bin (A.Add, A.Scalar_ref "a", A.Bin (A.Mul, _, _)) -> ()
          | _ -> Alcotest.fail "precedence wrong");
      case "left associativity of minus" (fun () ->
          match expr "a - b - cc" with
          | A.Bin (A.Sub, A.Bin (A.Sub, _, _), A.Scalar_ref "cc") -> ()
          | _ -> Alcotest.fail "associativity wrong");
      case "unary minus" (fun () ->
          match expr "-a * b" with
          | A.Bin (A.Mul, A.Neg (A.Scalar_ref "a"), A.Scalar_ref "b") -> ()
          | _ -> Alcotest.fail "unary minus binds tighter");
      case "intrinsic call" (fun () ->
          match expr "min(a, sqrt(b))" with
          | A.Call ("min", [ A.Scalar_ref "a"; A.Call ("sqrt", [ A.Scalar_ref "b" ]) ])
            -> ()
          | _ -> Alcotest.fail "call structure wrong");
      case "syntax error reports line" (fun () ->
          match parse "iterator k;\nstencil broken (" with
          | exception Parser.Parse_error (_, line) ->
            Alcotest.(check bool) "line >= 2" true (line >= 2)
          | _ -> Alcotest.fail "expected Parse_error");
      case "round-trip listing 1" (fun () ->
          let p = parse jacobi_src in
          let printed = Pretty.program_to_string p in
          let p2 = parse printed in
          Alcotest.(check bool) "round trip" true (p = p2));
      case "round-trip with iterate and assign" (fun () ->
          let src =
            {|parameter L=16;
iterator k, j, i;
double u[L,L,L], v[L,L,L], w;
copyin u, v, w;
stencil s0 (x, y, ww) {
#assign shmem (y), gmem (x);
x[k][j][i] = ww * y[k][j][i] + y[k][j][i+1] / 2.0;
x[k][j][i] += min(y[k-1][j][i], 3.5);
}
iterate 3 { s0 (u, v, w); swap (u, v); }
copyout u;
|}
          in
          let p = parse src in
          let p2 = parse (Pretty.program_to_string p) in
          Alcotest.(check bool) "round trip" true (p = p2));
      case "expression round-trip preserves structure" (fun () ->
          let e = expr "a * (b + cc) - d / (e1 - f)" in
          let e2 = expr (Pretty.expr_to_string e) in
          Alcotest.(check bool) "round trip" true (e = e2));
    ] )
