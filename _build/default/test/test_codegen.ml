(* Codegen tests: option derivation from pragmas, lowering decisions,
   resource assignment (automatic / user / occupancy rationing), the
   retiming transform, and the CUDA emitter. *)

open Artemis_dsl
module A = Ast
module I = Instantiate
module Plan = Artemis_ir.Plan
module O = Artemis_codegen.Options
module Lower = Artemis_codegen.Lower
module RA = Artemis_codegen.Resource_assign
module Retime = Artemis_codegen.Retime
module Cuda = Artemis_codegen.Cuda_emit
module Suite = Artemis_bench.Suite

let case name f = Alcotest.test_case name `Quick f
let dev = Artemis_gpu.Device.p100

let kernel_of bname = List.hd (Suite.kernels (Suite.find bname))

let tests =
  ( "codegen",
    [
      case "pragma stream/block/unroll map to options" (fun () ->
          let pr =
            { A.empty_pragma with A.stream_dim = Some "k"; block = Some [ 32; 16 ];
              unroll = [ ("j", 2) ] }
          in
          let o = O.of_pragma [ "k"; "j"; "i" ] pr in
          (match o.scheme with
           | O.Force_stream (Some 0) -> ()
           | _ -> Alcotest.fail "stream dim wrong");
          Alcotest.(check bool) "block slowest-first" true
            (o.block = Some [| 1; 16; 32 |]);
          Alcotest.(check bool) "unroll j" true (o.unroll = Some [| 1; 2; 1 |]));
      case "pragma occupancy becomes target" (fun () ->
          let pr = { A.empty_pragma with A.occupancy = Some 0.5 } in
          let o = O.of_pragma [ "k"; "j"; "i" ] pr in
          Alcotest.(check (option (float 1e-9))) "target" (Some 0.5)
            o.target_occupancy);
      case "lowering honors the pragma block" (fun () ->
          let k = kernel_of "7pt-smoother" in
          let p = Lower.lower_with_pragma dev k O.default in
          Alcotest.(check bool) "block 1x16x32" true (p.Plan.block = [| 1; 16; 32 |]);
          match p.Plan.scheme with
          | Plan.Serial_stream 0 -> ()
          | _ -> Alcotest.fail "expected serial stream along k");
      case "global options disable staging" (fun () ->
          let k = kernel_of "7pt-smoother" in
          let p = Lower.lower dev k O.global_tiled in
          Alcotest.(check bool) "no placement" true (p.Plan.placement = []);
          Alcotest.(check bool) "tiled" true (p.Plan.scheme = Plan.Tiled));
      case "automatic assignment stages reused inputs only" (fun () ->
          let k = kernel_of "addsgd4" in
          let auto = RA.automatic k in
          Alcotest.(check bool) "u staged" true
            (List.assoc_opt "u" auto = Some A.Shmem);
          Alcotest.(check bool) "1-D arrays not staged" true
            (List.assoc_opt "strx" auto = None);
          Alcotest.(check bool) "output not staged" true
            (List.assoc_opt "up" auto = None));
      case "intermediates of a fused kernel are staged" (fun () ->
          let k = kernel_of "7pt-smoother" in
          let fused = Artemis_fuse.Fusion.time_fuse k ~out:"out" ~inp:"in" ~f:2 in
          let auto = RA.automatic fused in
          Alcotest.(check bool) "intermediate staged" true
            (List.exists (fun (a, pl) -> pl = A.Shmem && String.length a > 2
               && String.sub a 0 2 = "__") auto));
      case "user #assign overrides the automatic map" (fun () ->
          let k = kernel_of "addsgd4" in
          let p = Lower.lower dev k O.default in
          Alcotest.(check bool) "um demoted by user" true
            (Plan.placement_of p "um" = A.Gmem);
          Alcotest.(check bool) "u kept" true (Plan.placement_of p "u" = A.Shmem));
      case "honor_user_assign=false ignores #assign" (fun () ->
          let k = kernel_of "addsgd4" in
          let p = Lower.lower dev k { O.default with O.honor_user_assign = false } in
          Alcotest.(check bool) "um staged automatically" true
            (Plan.placement_of p "um" = A.Shmem));
      case "occupancy rationing demotes the least-read buffer" (fun () ->
          let k = kernel_of "rhs4center" in
          let base =
            Lower.lower dev k { O.default with O.honor_user_assign = false }
          in
          let before = List.filter (fun (_, pl) -> pl = A.Shmem) base.Plan.placement in
          let rationed =
            RA.assign { base with Plan.block = [| 1; 16; 16 |] } ~honor_user:false
              ~target_occupancy:(Some 0.25)
          in
          let after = List.filter (fun (_, pl) -> pl = A.Shmem) rationed in
          Alcotest.(check bool) "some demotion happened" true
            (List.length after < List.length before));
      case "retime decomposes additive statements" (fun () ->
          let k = kernel_of "27pt-smoother" in
          let dec = Retime.decompose_kernel k in
          let accums =
            List.length
              (List.filter (function A.Accum _ -> true | _ -> false) dec.I.body)
          in
          Alcotest.(check bool) "accumulations appear" true (accums >= 3));
      case "decomposition preserves FLOP count" (fun () ->
          List.iter
            (fun bname ->
              let k = kernel_of bname in
              let dec = Retime.decompose_kernel k in
              Alcotest.(check int) bname
                (Analysis.flops_per_point k)
                (Analysis.flops_per_point dec))
            [ "7pt-smoother"; "27pt-smoother"; "helmholtz"; "rhs4center" ]);
      case "retime applies only when homogenizable" (fun () ->
          let k27 = kernel_of "27pt-smoother" in
          Alcotest.(check bool) "27pt retimes" true
            (Retime.apply k27 ~dim_index:0 <> None);
          let k7 = kernel_of "7pt-smoother" in
          Alcotest.(check bool) "7pt does not (mixed-plane term)" true
            (Retime.apply k7 ~dim_index:0 = None));
      case "lowering with retime flags the plan" (fun () ->
          let k = kernel_of "27pt-smoother" in
          let p = Lower.lower dev k { O.default with O.retime = true } in
          Alcotest.(check bool) "retimed" true p.Plan.retime);
      case "cuda: kernel and launcher emitted" (fun () ->
          let k = kernel_of "7pt-smoother" in
          let p = Lower.lower_with_pragma dev k O.default in
          let src = Cuda.emit p in
          let has needle =
            let len_n = String.length needle and len_s = String.length src in
            let rec go i =
              i + len_n <= len_s && (String.sub src i len_n = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "__global__" true (has "__global__");
          Alcotest.(check bool) "shared buffer" true (has "__shared__ double sh_in_c0");
          Alcotest.(check bool) "register planes" true (has "double in_reg_m1");
          Alcotest.(check bool) "syncthreads" true (has "__syncthreads()");
          Alcotest.(check bool) "host launcher" true (has "launch_jacobi7");
          Alcotest.(check bool) "grid dims" true (has "dim3 grid"));
      case "cuda: tiled version has no plane loop" (fun () ->
          let k = kernel_of "7pt-smoother" in
          let p = Lower.lower dev k O.global_tiled in
          let src = Cuda.emit p in
          let has needle =
            let len_n = String.length needle and len_s = String.length src in
            let rec go i =
              i + len_n <= len_s && (String.sub src i len_n = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "no rotation" false (has "rotate plane window");
          Alcotest.(check bool) "guards present" true (has "if ("));
      (* sentinel comment keeping structure explicit *)
      case "cuda emission is deterministic" (fun () ->
          let k = kernel_of "helmholtz" in
          let p = Lower.lower_with_pragma dev k O.default in
          Alcotest.(check string) "stable" (Cuda.emit p) (Cuda.emit p));
      case "cuda: prefetch register emitted" (fun () ->
          let k = kernel_of "7pt-smoother" in
          let p = Lower.lower dev k { O.default with O.prefetch = true } in
          let src = Cuda.emit p in
          let has needle =
            let len_n = String.length needle and len_s = String.length src in
            let rec go i =
              i + len_n <= len_s && (String.sub src i len_n = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "prefetch reg" true (has "_pf"));
    ] )
