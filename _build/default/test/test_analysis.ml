(* Analysis tests: FLOP counting against Table I conventions, stencil
   order, offsets, extents for fused DAGs, homogenizability, folding. *)

open Artemis_dsl
module A = Ast
module B = Builder
module An = Analysis
module I = Instantiate

let case name f = Alcotest.test_case name `Quick f

let kernel_of_src ?(which = 0) src =
  let p = Parser.parse_program src in
  Check.check p;
  let rec launches = function
    | [] -> []
    | I.Launch k :: rest -> k :: launches rest
    | I.Exchange _ :: rest -> launches rest
    | I.Repeat (_, sub) :: rest -> launches sub @ launches rest
  in
  List.nth (launches (I.schedule p)) which

let jacobi_kernel () =
  kernel_of_src
    {|parameter L=16, M=16, N=16;
      iterator k, j, i;
      double in[L,M,N], out[L,M,N], a, b, h2inv;
      stencil jacobi (B, A, h2inv, a, b) {
        double c = b * h2inv;
        B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
          + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
          A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
      }
      jacobi (out, in, h2inv, a, b);|}

let dag_kernel () =
  (* g is produced and consumed at offset: recompute halo 1. *)
  kernel_of_src
    {|parameter L=16; iterator k, j, i;
      double u[L,L,L], g[L,L,L], out[L,L,L];
      stencil dag (O, G, U) {
        G[k][j][i] = U[k][j][i+1] - U[k][j][i-1];
        O[k][j][i] = G[k][j][i+1] + G[k][j][i-1] + U[k+2][j][i];
      }
      dag (out, g, u);|}

let tests =
  ( "analysis",
    [
      case "jacobi flops = 10 (Table I convention)" (fun () ->
          Alcotest.(check int) "flops" 10 (An.flops_per_point (jacobi_kernel ())));
      case "loop-invariant temp costs nothing" (fun () ->
          let st = A.Decl_temp ("t", A.Bin (A.Mul, A.Scalar_ref "a", A.Scalar_ref "b")) in
          Alcotest.(check int) "flops" 0 (An.flops_of_stmt st));
      case "array-dependent temp is counted" (fun () ->
          let st =
            A.Decl_temp ("t", A.Bin (A.Mul, A.Scalar_ref "a", B.a3 "A" (0, 0, 0)))
          in
          Alcotest.(check int) "flops" 1 (An.flops_of_stmt st));
      case "accumulation costs one extra add" (fun () ->
          let e = A.Bin (A.Mul, A.Scalar_ref "a", B.a3 "A" (0, 0, 0)) in
          Alcotest.(check int) "accum - assign = 1" 1
            (An.flops_of_stmt (B.accum3 "B" e) - An.flops_of_stmt (B.assign3 "B" e)));
      case "jacobi order = 1" (fun () ->
          Alcotest.(check int) "order" 1 (An.stencil_order (jacobi_kernel ())));
      case "order ignores write offsets" (fun () ->
          let k = dag_kernel () in
          Alcotest.(check int) "order" 2 (An.stencil_order k));
      case "order per dim" (fun () ->
          let v = An.order_per_dim (jacobi_kernel ()) in
          Alcotest.(check bool) "1,1,1" true (v = [| 1; 1; 1 |]));
      case "io arrays" (fun () ->
          Alcotest.(check int) "2 arrays" 2 (An.io_array_count (jacobi_kernel ())));
      case "theoretical OI of jacobi" (fun () ->
          Alcotest.(check (float 1e-9)) "10/16" 0.625
            (An.theoretical_oi (jacobi_kernel ())));
      case "reads per point" (fun () ->
          let r = An.reads_per_point (jacobi_kernel ()) in
          Alcotest.(check (option int)) "in read 8x" (Some 8) (List.assoc_opt "in" r));
      case "distinct offsets dedupe" (fun () ->
          let offs = An.distinct_offsets (jacobi_kernel ()) in
          Alcotest.(check (option int)) "7 offsets" (Some 7)
            (Option.map List.length (List.assoc_opt "in" offs)));
      case "offset range along stream dim" (fun () ->
          let lo, hi = An.offset_range (jacobi_kernel ()) "in" 0 in
          Alcotest.(check (pair int int)) "(-1,1)" (-1, 1) (lo, hi));
      case "required extents of DAG intermediate" (fun () ->
          let k = dag_kernel () in
          let exts = An.required_extents k in
          (match Hashtbl.find_opt exts "g" with
           | Some e -> Alcotest.(check bool) "g extent x = (-1,1)" true (e.(2) = (-1, 1))
           | None -> Alcotest.fail "no extent for g");
          match Hashtbl.find_opt exts "u" with
          | Some e ->
            (* u needed at g's extent + (-1,1) plus the direct read at k+2 *)
            Alcotest.(check bool) "u extent x = (-2,2)" true (e.(2) = (-2, 2));
            Alcotest.(check bool) "u extent z = (0,2)" true (e.(0) = (0, 2))
          | None -> Alcotest.fail "no extent for u");
      case "recompute halo of DAG" (fun () ->
          Alcotest.(check int) "halo 1" 1 (An.recompute_halo (dag_kernel ())));
      case "recompute halo zero without intermediate reuse" (fun () ->
          Alcotest.(check int) "halo 0" 0 (An.recompute_halo (jacobi_kernel ())));
      case "decompose_sum flattens with signs" (fun () ->
          let e = Parser.parse_expr_string "a - (b + cc) + d" in
          let terms = An.decompose_sum e in
          Alcotest.(check int) "4 terms" 4 (List.length terms);
          let signs = List.map fst terms in
          Alcotest.(check bool) "signs" true (signs = [ true; false; false; true ]));
      case "homogenizable single-plane term" (fun () ->
          let t = Parser.parse_expr_string "A[k-1][j][i] * A[k-1][j+1][i]" in
          Alcotest.(check (option int)) "shift -1" (Some (-1))
            (An.term_stream_shift [ "k"; "j"; "i" ] "k" t));
      case "mixed-plane term not homogenizable" (fun () ->
          let t = Parser.parse_expr_string "C[k+1][j][i] * A[k-1][j][i]" in
          Alcotest.(check (option int)) "none" None
            (An.term_stream_shift [ "k"; "j"; "i" ] "k" t));
      case "term without reads homogenizes at 0" (fun () ->
          let t = Parser.parse_expr_string "a * b" in
          Alcotest.(check (option int)) "zero" (Some 0)
            (An.term_stream_shift [ "k"; "j"; "i" ] "k" t));
      case "jacobi not retimable along k (mixed planes in one term)" (fun () ->
          Alcotest.(check bool) "not retimable" false
            (An.kernel_retimable (jacobi_kernel ()) "k"));
      case "plane-separated 27pt is retimable after decomposition" (fun () ->
          let b = Artemis_bench.Suite.find "27pt-smoother" in
          let k = List.hd (Artemis_bench.Suite.kernels b) in
          let dec = Artemis_codegen.Retime.decompose_kernel k in
          Alcotest.(check bool) "retimable" true (An.kernel_retimable dec "k"));
      case "foldable group detected" (fun () ->
          let k =
            kernel_of_src
              {|parameter L=16; iterator k, j, i;
                double p[L,L,L], q[L,L,L], o[L,L,L];
                stencil s0 (O, P, Q) {
                  O[k][j][i] = P[k][j][i+1]*Q[k][j][i+1] + P[k][j][i-1]*Q[k][j][i-1];
                }
                s0 (o, p, q);|}
          in
          match An.foldable_groups k with
          | [ (A.Mul, arrays) ] ->
            Alcotest.(check (list string)) "p,q" [ "p"; "q" ] (List.sort compare arrays)
          | _ -> Alcotest.fail "expected one Mul group");
      case "no folding when an array is read alone" (fun () ->
          let k =
            kernel_of_src
              {|parameter L=16; iterator k, j, i;
                double p[L,L,L], q[L,L,L], o[L,L,L];
                stencil s0 (O, P, Q) {
                  O[k][j][i] = P[k][j][i+1]*Q[k][j][i+1] + P[k][j][i-1];
                }
                s0 (o, p, q);|}
          in
          Alcotest.(check int) "no groups" 0 (List.length (An.foldable_groups k)));
    ] )
