(* Extension tests: 2-D stencil programs end to end (the DSL and every
   phase are rank-generic), device portability (V100), and the traffic
   model's ablation hook. *)

open Artemis_dsl
module A = Ast
module I = Instantiate
module Plan = Artemis_ir.Plan
module E = Artemis_exec
module O = Artemis_codegen.Options

let case name f = Alcotest.test_case name `Quick f
let p100 = Artemis_gpu.Device.p100
let v100 = Artemis_gpu.Device.v100

(* A 2-D 5-point blur with one intermediate — exercises rank-2 paths. *)
let blur2d_src n =
  Printf.sprintf
    {|parameter M=%d, N=%d;
      iterator j, i;
      double u[M,N], g[M,N], out[M,N], w;
      copyin u, g, w;
      stencil blur (O, G, U, ww) {
        G[j][i] = 0.25 * (U[j][i+1] + U[j][i-1] + U[j+1][i] + U[j-1][i]);
        O[j][i] = U[j][i] + ww * (G[j][i+1] + G[j][i-1] - 2.0 * G[j][i]);
      }
      blur (out, g, u, w);
      copyout out;|}
    n n

let parse_checked src =
  let p = Parser.parse_program src in
  Check.check p;
  p

let tests =
  ( "extensions",
    [
      case "2-D program parses, checks, and instantiates" (fun () ->
          let prog = parse_checked (blur2d_src 32) in
          let k = match I.schedule prog with [ I.Launch k ] -> k | _ -> assert false in
          Alcotest.(check int) "rank 2" 2 (Array.length k.domain);
          Alcotest.(check (list string)) "iterators" [ "j"; "i" ] k.iters;
          Alcotest.(check int) "order" 1 (Analysis.stencil_order k));
      case "2-D tiled plan executes == reference" (fun () ->
          let prog = parse_checked (blur2d_src 24) in
          let k = match I.schedule prog with [ I.Launch k ] -> k | _ -> assert false in
          let sched = I.schedule prog in
          let scalars = E.Reference.scalars_of_program prog in
          let ref_store = E.Reference.store_of_program prog in
          E.Reference.run_schedule ref_store ~scalars sched;
          let store = E.Reference.store_of_program prog in
          let plan =
            { (Plan.default p100 k) with
              Plan.block = [| 8; 32 |]; placement = [ ("u", A.Shmem) ] }
          in
          let _ = E.Kernel_exec.run plan store ~scalars in
          Alcotest.(check (float 0.0)) "bit-exact" 0.0
            (E.Grid.max_abs_diff
               (E.Reference.find_array ref_store "out")
               (E.Reference.find_array store "out")));
      case "2-D streaming plan executes == reference" (fun () ->
          let prog = parse_checked (blur2d_src 24) in
          let k = match I.schedule prog with [ I.Launch k ] -> k | _ -> assert false in
          let store0 = E.Reference.store_of_program prog in
          let scalars = E.Reference.scalars_of_program prog in
          E.Reference.run_kernel store0 ~scalars k;
          let store = E.Reference.store_of_program prog in
          let plan =
            { (Plan.default p100 k) with
              Plan.scheme = Plan.Serial_stream 0; block = [| 1; 64 |];
              placement = [ ("u", A.Shmem) ] }
          in
          let _ = E.Kernel_exec.run plan store ~scalars in
          Alcotest.(check (float 0.0)) "bit-exact" 0.0
            (E.Grid.max_abs_diff
               (E.Reference.find_array store0 "out")
               (E.Reference.find_array store "out")));
      case "2-D program tunes" (fun () ->
          let prog = parse_checked (blur2d_src 256) in
          let k = match I.schedule prog with [ I.Launch k ] -> k | _ -> assert false in
          let r = Artemis.optimize_kernel k in
          Alcotest.(check bool) "positive perf" true (r.tuned.tflops > 0.0));
      case "V100 plans validate and measure" (fun () ->
          let b = Artemis_bench.Suite.find "7pt-smoother" in
          let k = List.hd (Artemis_bench.Suite.kernels b) in
          let p = Artemis_codegen.Lower.lower v100 k O.default in
          match E.Analytic.try_measure p with
          | Some m -> Alcotest.(check bool) "positive" true (m.tflops > 0.0)
          | None -> Alcotest.fail "V100 plan invalid");
      case "V100's larger shared memory admits bigger footprints" (fun () ->
          (* a block needing 60 KB launches on V100, not on P100 *)
          let u =
            { Artemis_gpu.Occupancy.threads_per_block = 256; regs_per_thread = 32;
              shared_per_block = 60 * 1024 }
          in
          Alcotest.(check int) "p100 zero" 0
            (Artemis_gpu.Occupancy.calculate p100 u).blocks_per_sm;
          Alcotest.(check bool) "v100 launches" true
            ((Artemis_gpu.Occupancy.calculate v100 u).blocks_per_sm > 0));
      case "with_model restores the default on exit" (fun () ->
          let before = !E.Traffic.model in
          E.Traffic.with_model
            { E.Traffic.default_model with halo_miss = 0.1 }
            (fun () ->
              Alcotest.(check (float 0.0)) "inside" 0.1 !E.Traffic.model.halo_miss);
          Alcotest.(check (float 0.0)) "restored" before.halo_miss
            !E.Traffic.model.halo_miss);
      case "halo miss rate moves DRAM traffic monotonically" (fun () ->
          let b = Artemis_bench.Suite.at_size 32 (Artemis_bench.Suite.find "7pt-smoother") in
          let k = List.hd (Artemis_bench.Suite.kernels b) in
          let p = Artemis_codegen.Lower.lower p100 k O.default in
          let dram hm =
            E.Traffic.with_model
              { E.Traffic.default_model with halo_miss = hm }
              (fun () -> (E.Analytic.measure p).counters.dram_bytes)
          in
          Alcotest.(check bool) "monotone" true (dram 0.2 < dram 0.8));
      case "extras: every 2-D benchmark executes == reference" (fun () ->
          let module X = Artemis_bench.Extras in
          List.iter
            (fun (b0 : X.t) ->
              let b = X.at_size 20 b0 in
              Check.check b.prog;
              let sched = I.schedule b.prog in
              let scalars = E.Reference.scalars_of_program b.prog in
              let ref_store = E.Reference.store_of_program b.prog in
              E.Reference.run_schedule ref_store ~scalars sched;
              let store = E.Reference.store_of_program b.prog in
              let plan_of k =
                Artemis_codegen.Lower.lower p100 k O.default
              in
              let steps = E.Runner.configure ~plan_of sched in
              let _ = E.Runner.run_schedule steps store ~scalars in
              List.iter
                (fun out ->
                  Alcotest.(check (float 1e-6)) (b.name ^ "/" ^ out) 0.0
                    (E.Grid.max_abs_diff
                       (E.Reference.find_array ref_store out)
                       (E.Reference.find_array store out)))
                b.prog.copyout)
            X.all);
      case "extras: gradmag's weight product folds" (fun () ->
          let module X = Artemis_bench.Extras in
          let k = List.hd (X.kernels (X.find "gradmag")) in
          match Analysis.foldable_groups k with
          | [ (A.Mul, arrays) ] ->
            Alcotest.(check (list string)) "gx,wx" [ "gx"; "wx" ]
              (List.sort compare arrays)
          | _ -> Alcotest.fail "expected one Mul group");
      case "extras: heat2d deep tuning covers its time loop" (fun () ->
          let module X = Artemis_bench.Extras in
          let b = X.find "heat2d" in
          let dr = Artemis.deep_tune ~max_tile:3 b.prog in
          Alcotest.(check int) "covers T=16" 16
            (List.fold_left ( + ) 0 dr.schedule));
      case "extras: heat2d fused execution equals reference (interior)"
        (fun () ->
          let module X = Artemis_bench.Extras in
          let b = X.at_size 24 (X.find "heat2d") in
          (* shorten the time loop so boundary effects (one cell per sweep)
             leave a comparable deep interior at this grid size *)
          let prog =
            { b.prog with
              A.main =
                [ A.Iterate (4, [ A.Apply ("heat2d", [ "v"; "u"; "alpha" ]);
                                  A.Swap ("v", "u") ]) ] }
          in
          let b = { b with X.prog } in
          let sched = I.schedule b.prog in
          let scalars = E.Reference.scalars_of_program b.prog in
          match List.find_map Artemis_fuse.Fusion.pingpong_of_item sched with
          | None -> Alcotest.fail "no ping-pong"
          | Some pp ->
            let t, _, _, inp = pp in
            let plain = E.Reference.store_of_program b.prog in
            E.Reference.run_schedule plain ~scalars sched;
            let fused_sched =
              Artemis_fuse.Fusion.fuse_pingpong pp
                ~schedule:(List.init (t / 2) (fun _ -> 2))
            in
            let fused = E.Reference.store_of_program b.prog in
            E.Reference.run_schedule fused ~scalars fused_sched;
            (* interior margin only leaves a small core at 24^2 *)
            ignore
              (Alcotest.(check bool) "close on deep interior" true
                 (E.Grid.max_abs_diff_interior ~margin:10
                    (E.Reference.find_array plain inp)
                    (E.Reference.find_array fused inp)
                  < 1e-6)));
      case "1-D stencil programs work end to end" (fun () ->
          let prog =
            parse_checked
              {|parameter N=64; iterator i;
                double u[N], out[N], c0;
                copyin u, c0;
                stencil s0 (O, U, cc) {
                  O[i] = cc * (U[i-1] + U[i] + U[i+1]);
                }
                s0 (out, u, c0);
                copyout out;|}
          in
          let k = match I.schedule prog with [ I.Launch k ] -> k | _ -> assert false in
          let scalars = E.Reference.scalars_of_program prog in
          let ref_store = E.Reference.store_of_program prog in
          E.Reference.run_kernel ref_store ~scalars k;
          let store = E.Reference.store_of_program prog in
          let plan = { (Plan.default p100 k) with Plan.block = [| 64 |] } in
          let _ = E.Kernel_exec.run plan store ~scalars in
          Alcotest.(check (float 0.0)) "bit-exact" 0.0
            (E.Grid.max_abs_diff
               (E.Reference.find_array ref_store "out")
               (E.Reference.find_array store "out")));
    ] )
