(* Dependence-graph tests on the Figure-3 structure. *)

open Artemis_dsl
module A = Ast
module Dg = Depgraph
module Suite = Artemis_bench.Suite

let case name f = Alcotest.test_case name `Quick f

let body_of src =
  let p = Parser.parse_program src in
  Check.check p;
  (List.hd p.stencils).body

let tests =
  ( "depgraph",
    [
      case "flow edges through temporaries" (fun () ->
          let body =
            body_of
              {|parameter L=8; iterator k, j, i;
                double u[L,L,L], o[L,L,L];
                stencil s0 (O, U) {
                  double t = U[k][j][i] * 2.0;
                  O[k][j][i] = t + U[k][j][i+1];
                }
                s0 (o, u);|}
          in
          let g = Dg.build body in
          Alcotest.(check (list int)) "stmt 1 depends on stmt 0" [ 0 ] g.preds.(1));
      case "accumulation depends on its own previous write" (fun () ->
          let body =
            body_of
              {|parameter L=8; iterator k, j, i;
                double u[L,L,L], o[L,L,L];
                stencil s0 (O, U) {
                  O[k][j][i] = U[k][j][i];
                  O[k][j][i] += U[k][j][i+1];
                }
                s0 (o, u);|}
          in
          let g = Dg.build body in
          Alcotest.(check (list int)) "accum after assign" [ 0 ] g.preds.(1));
      case "backward slice includes transitive producers" (fun () ->
          let body =
            body_of
              {|parameter L=8; iterator k, j, i;
                double u[L,L,L], o[L,L,L];
                stencil s0 (O, U) {
                  double t1 = U[k][j][i];
                  double t2 = t1 * 2.0;
                  double t3 = U[k][j][i+1];
                  O[k][j][i] = t2;
                }
                s0 (o, u);|}
          in
          let g = Dg.build body in
          let slice = Dg.backward_slice g 3 in
          let ids = List.map (fun (n : Dg.node) -> n.id) slice in
          Alcotest.(check (list int)) "t3 excluded" [ 0; 1; 3 ] ids);
      case "output nodes of rhs4sgcurv are the three uacc writes" (fun () ->
          let k = List.hd (Suite.kernels (Suite.find "rhs4sgcurv")) in
          let g = Dg.build k.Instantiate.body in
          let outs = Dg.output_nodes g k in
          let names =
            List.map (fun id -> g.nodes.(id).Dg.defines) outs |> List.sort_uniq compare
          in
          Alcotest.(check (list string)) "outputs" [ "uacc0"; "uacc1"; "uacc2" ] names);
      case "body order is topological" (fun () ->
          let k = List.hd (Suite.kernels (Suite.find "rhs4center")) in
          let g = Dg.build k.Instantiate.body in
          let order = List.init (Array.length g.nodes) Fun.id in
          Alcotest.(check bool) "topological" true (Dg.is_topological g order));
      case "reversed order is not topological (when edges exist)" (fun () ->
          let body =
            body_of
              {|parameter L=8; iterator k, j, i;
                double u[L,L,L], o[L,L,L];
                stencil s0 (O, U) {
                  double t = U[k][j][i];
                  O[k][j][i] = t;
                }
                s0 (o, u);|}
          in
          let g = Dg.build body in
          Alcotest.(check bool) "not topological" false (Dg.is_topological g [ 1; 0 ]));
    ] )
