test/test_lexer.ml: Alcotest Artemis_dsl Lexer List Printf
