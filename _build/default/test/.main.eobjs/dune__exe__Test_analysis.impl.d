test/test_analysis.ml: Alcotest Analysis Array Artemis_bench Artemis_codegen Artemis_dsl Ast Builder Check Hashtbl Instantiate List Option Parser
