test/test_check.ml: Alcotest Artemis_bench Artemis_dsl Check List Parser
