test/test_parser.ml: Alcotest Artemis_dsl Ast List Parser Pretty
