test/test_driver.ml: Alcotest Artemis List String
