test/test_suite_bench.ml: Alcotest Analysis Array Artemis Artemis_baselines Artemis_bench Artemis_dsl Artemis_gpu Artemis_ir Ast Builder Instantiate List Printf
