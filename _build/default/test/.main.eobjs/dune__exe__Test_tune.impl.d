test/test_tune.ml: Alcotest Array Artemis_bench Artemis_codegen Artemis_exec Artemis_gpu Artemis_ir Artemis_profile Artemis_tune List Printf
