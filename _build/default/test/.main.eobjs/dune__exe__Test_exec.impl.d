test/test_exec.ml: Alcotest Array Artemis_bench Artemis_codegen Artemis_dsl Artemis_exec Artemis_gpu Artemis_ir Ast Check Float Hashtbl Instantiate List Parser Printf
