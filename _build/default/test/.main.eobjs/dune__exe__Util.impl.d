test/util.ml: Array Artemis_codegen Artemis_gpu Artemis_ir
