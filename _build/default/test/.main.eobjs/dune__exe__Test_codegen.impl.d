test/test_codegen.ml: Alcotest Analysis Artemis_bench Artemis_codegen Artemis_dsl Artemis_fuse Artemis_gpu Artemis_ir Ast Instantiate List String
