test/test_gpu.ml: Alcotest Artemis_gpu Coalesce Counters Device List Occupancy Timing
