test/test_depgraph.ml: Alcotest Array Artemis_bench Artemis_dsl Ast Check Depgraph Fun Instantiate List Parser
