test/test_ir.ml: Alcotest Array Artemis_bench Artemis_dsl Artemis_gpu Artemis_ir Ast Instantiate List
