test/main.mli:
