test/test_traffic.ml: Alcotest Array Artemis_bench Artemis_codegen Artemis_dsl Artemis_exec Artemis_fuse Artemis_gpu Artemis_ir List Util
