test/test_extensions.ml: Alcotest Analysis Array Artemis Artemis_bench Artemis_codegen Artemis_dsl Artemis_exec Artemis_fuse Artemis_gpu Artemis_ir Ast Check Instantiate List Parser Printf
