test/test_profile.ml: Alcotest Artemis_bench Artemis_codegen Artemis_exec Artemis_gpu Artemis_profile List Util
