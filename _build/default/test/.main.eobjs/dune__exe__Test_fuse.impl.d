test/test_fuse.ml: Alcotest Analysis Artemis_bench Artemis_dsl Artemis_exec Artemis_fuse Ast Check Instantiate List Parser Pretty
