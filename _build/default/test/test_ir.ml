(* IR tests: launch geometry, staging layout, resource estimation, and
   plan validation. *)

open Artemis_dsl
module A = Ast
module I = Instantiate
module Plan = Artemis_ir.Plan
module Launch = Artemis_ir.Launch
module Estimate = Artemis_ir.Estimate
module Validate = Artemis_ir.Validate

let case name f = Alcotest.test_case name `Quick f
let dev = Artemis_gpu.Device.p100

let jacobi_kernel ?(n = 64) () =
  let b = Artemis_bench.Suite.at_size n (Artemis_bench.Suite.find "7pt-smoother") in
  List.hd (Artemis_bench.Suite.kernels b)

let plan ?(scheme = Plan.Serial_stream 0) ?(block = [| 1; 16; 32 |])
    ?(unroll = [| 1; 1; 1 |]) ?(placement = [ ("in", A.Shmem) ]) ?(retime = false) k =
  { (Plan.default dev k) with Plan.scheme; block; unroll; placement; retime }

let tests =
  ( "ir",
    [
      case "geometry: tiled grid covers the domain" (fun () ->
          let k = jacobi_kernel () in
          let p = plan ~scheme:Plan.Tiled ~block:[| 4; 4; 16 |] ~placement:[] k in
          let g = Launch.geometry p in
          Alcotest.(check bool) "tile" true (g.tile = [| 4; 4; 16 |]);
          Alcotest.(check bool) "grid" true (g.grid = [| 16; 16; 4 |]);
          Alcotest.(check int) "blocks" (16 * 16 * 4) g.total_blocks);
      case "geometry: serial streaming walks the whole dimension" (fun () ->
          let k = jacobi_kernel () in
          let g = Launch.geometry (plan k) in
          Alcotest.(check bool) "tile z = 64" true (g.tile.(0) = 64);
          Alcotest.(check bool) "grid z = 1" true (g.grid.(0) = 1);
          Alcotest.(check int) "steps = 64 + window" 66 g.steps_per_block);
      case "geometry: concurrent streaming chunks the dimension" (fun () ->
          let k = jacobi_kernel () in
          let g = Launch.geometry (plan ~scheme:(Plan.Concurrent_stream (0, 16)) k) in
          Alcotest.(check bool) "grid z = 4" true (g.grid.(0) = 4);
          Alcotest.(check int) "steps" 18 g.steps_per_block);
      case "geometry: unroll multiplies the tile" (fun () ->
          let k = jacobi_kernel () in
          let g = Launch.geometry (plan ~unroll:[| 1; 2; 1 |] k) in
          Alcotest.(check bool) "tile y" true (g.tile.(1) = 32));
      case "geometry: interior excludes the halo ring" (fun () ->
          let k = jacobi_kernel () in
          let g = Launch.geometry (plan k) in
          Alcotest.(check bool) "lo" true (g.interior_lo = [| 1; 1; 1 |]);
          Alcotest.(check bool) "hi" true (g.interior_hi = [| 62; 62; 62 |]));
      case "staging: 7pt in stream mode uses 1 shared + 2 reg planes" (fun () ->
          let k = jacobi_kernel () in
          let bufs = Launch.buffers (plan k) in
          match List.find_opt (fun (b : Launch.buffer) -> b.array = "in") bufs with
          | Some { staging = Launch.Stage_stream { shared_planes; reg_planes; _ }; _ } ->
            Alcotest.(check (list int)) "shared" [ 0 ] shared_planes;
            Alcotest.(check (list int)) "regs" [ -1; 1 ] reg_planes
          | _ -> Alcotest.fail "expected stream staging for in");
      case "staging: retiming collapses to the center plane" (fun () ->
          let k = jacobi_kernel () in
          let bufs = Launch.buffers (plan ~retime:true k) in
          match List.find_opt (fun (b : Launch.buffer) -> b.array = "in") bufs with
          | Some { staging = Launch.Stage_stream { shared_planes; reg_planes; _ }; _ } ->
            Alcotest.(check (list int)) "shared" [ 0 ] shared_planes;
            Alcotest.(check (list int)) "regs" [] reg_planes
          | _ -> Alcotest.fail "expected stream staging");
      case "staging: tiled mode stages the full halo tile" (fun () ->
          let k = jacobi_kernel () in
          let p = plan ~scheme:Plan.Tiled ~block:[| 4; 4; 16 |] k in
          let bufs = Launch.buffers p in
          (match List.find_opt (fun (b : Launch.buffer) -> b.array = "in") bufs with
           | Some { staging = Launch.Stage_tile { halo }; _ } ->
             Alcotest.(check bool) "halo" true
               (halo = [| (-1, 1); (-1, 1); (-1, 1) |])
           | _ -> Alcotest.fail "expected tile staging");
          (* (4+2)*(4+2)*(16+2)*8 bytes *)
          Alcotest.(check int) "shared bytes" (6 * 6 * 18 * 8)
            (Launch.shared_bytes_per_block p (Launch.geometry p) bufs));
      case "staging: shared plane bytes" (fun () ->
          let k = jacobi_kernel () in
          let p = plan k in
          let bufs = Launch.buffers p in
          (* one plane of (16+2) x (32+2) doubles *)
          Alcotest.(check int) "bytes" (18 * 34 * 8)
            (Launch.shared_bytes_per_block p (Launch.geometry p) bufs));
      case "syncs: streaming pays two barriers per plane step" (fun () ->
          let k = jacobi_kernel () in
          let p = plan k in
          let g = Launch.geometry p in
          Alcotest.(check int) "syncs" (2 * g.steps_per_block)
            (Launch.syncs_per_block p g (Launch.buffers p)));
      case "syncs: no shared memory, no barriers" (fun () ->
          let k = jacobi_kernel () in
          let p = plan ~placement:[] k in
          Alcotest.(check int) "syncs" 0
            (Launch.syncs_per_block p (Launch.geometry p) (Launch.buffers p)));
      case "estimate: unrolling raises register pressure" (fun () ->
          let k = jacobi_kernel () in
          let r1 = (Estimate.resources (plan k)).regs_per_thread in
          let r2 =
            (Estimate.resources (plan ~unroll:[| 1; 4; 1 |] ~block:[| 1; 4; 32 |] k))
              .regs_per_thread
          in
          Alcotest.(check bool) "more regs" true (r2 > r1));
      case "estimate: prefetch adds staging registers" (fun () ->
          let k = jacobi_kernel () in
          let base = plan k in
          let r1 = (Estimate.resources base).regs_per_thread in
          let r2 = (Estimate.resources { base with Plan.prefetch = true }).regs_per_thread in
          Alcotest.(check bool) "more regs" true (r2 > r1));
      case "estimate: spills appear when the budget shrinks" (fun () ->
          let k =
            List.hd (Artemis_bench.Suite.kernels (Artemis_bench.Suite.find "rhs4sgcurv"))
          in
          let p = { (Plan.default dev k) with Plan.max_regs = 255 } in
          let r = Estimate.resources p in
          Alcotest.(check bool) "maxfuse spills even at 255" true
            (r.spilled_doubles > 0));
      case "estimate: ILP grows with unrolling" (fun () ->
          let k = jacobi_kernel () in
          let i1 = (Estimate.resources (plan k)).ilp in
          let i2 =
            (Estimate.resources (plan ~unroll:[| 1; 4; 1 |] ~block:[| 1; 4; 32 |] k)).ilp
          in
          Alcotest.(check bool) "ilp grows" true (i2 > i1));
      case "validate: good plan passes" (fun () ->
          Alcotest.(check (list string)) "no violations" []
            (List.map Validate.violation_to_string (Validate.violations (plan (jacobi_kernel ())))));
      case "validate: oversized block rejected" (fun () ->
          let p = plan ~block:[| 1; 64; 32 |] (jacobi_kernel ()) in
          Alcotest.(check bool) "invalid" false (Validate.is_valid p));
      case "validate: streamed dim must have one thread" (fun () ->
          let p = plan ~block:[| 2; 16; 32 |] (jacobi_kernel ()) in
          Alcotest.(check bool) "invalid" false (Validate.is_valid p));
      case "validate: cuda z-extent cap" (fun () ->
          let p =
            plan ~scheme:Plan.Tiled ~block:[| 128; 2; 4 |] ~placement:[]
              (jacobi_kernel ())
          in
          Alcotest.(check bool) "invalid" false (Validate.is_valid p));
      case "validate: register budget cap" (fun () ->
          let p = { (plan (jacobi_kernel ())) with Plan.max_regs = 300 } in
          Alcotest.(check bool) "invalid" false (Validate.is_valid p));
      case "validate: zero-occupancy plans rejected" (fun () ->
          let k =
            List.hd (Artemis_bench.Suite.kernels (Artemis_bench.Suite.find "rhs4center"))
          in
          (* 243 regs x 1024 threads cannot launch *)
          let p =
            { (Plan.default dev k) with
              Plan.scheme = Plan.Serial_stream 0; block = [| 1; 32; 32 |] }
          in
          Alcotest.(check bool) "invalid" false (Validate.is_valid p));
      case "plan label is deterministic" (fun () ->
          let p = plan (jacobi_kernel ()) in
          Alcotest.(check string) "label" (Plan.label p) (Plan.label p));
    ] )
