(* Shared test helpers. *)

module Plan = Artemis_ir.Plan

let dev = Artemis_gpu.Device.p100

(* Lower and shrink the block shape until the plan is launchable, as the
   tuner's validity filter would. *)
let valid_lower ?(device = dev) k opts =
  let p = Artemis_codegen.Lower.lower device k opts in
  let rec shrink (p : Plan.t) tries =
    if tries = 0 then p
    else if Artemis_ir.Validate.is_valid p then p
    else begin
      let block = Array.copy p.block in
      let d = ref (-1) in
      Array.iteri (fun i e -> if e > 1 && (!d < 0 || e > block.(!d)) then d := i) block;
      if !d < 0 then p
      else begin
        block.(!d) <- max 1 (block.(!d) / 2);
        shrink { p with Plan.block } (tries - 1)
      end
    end
  in
  shrink p 12
