(* Lexer unit tests. *)

open Artemis_dsl
module L = Lexer

let toks src = List.map fst (L.tokenize src)

let check_toks name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = toks src in
      Alcotest.(check bool)
        (Printf.sprintf "%s tokens" name)
        true
        (got = expected @ [ L.EOF ]))

let case name f = Alcotest.test_case name `Quick f

let tests =
  ( "lexer",
    [
      check_toks "empty" "" [];
      check_toks "idents and keywords" "parameter iterator double stencil foo"
        [ L.KW_PARAMETER; L.KW_ITERATOR; L.KW_DOUBLE; L.KW_STENCIL; L.IDENT "foo" ];
      check_toks "integers" "0 42 512" [ L.INT 0; L.INT 42; L.INT 512 ];
      check_toks "floats" "6.0 0.5 1e-3 2.5E+2"
        [ L.FLOAT 6.0; L.FLOAT 0.5; L.FLOAT 1e-3; L.FLOAT 250.0 ];
      check_toks "operators" "+ - * / = +="
        [ L.PLUS; L.MINUS; L.STAR; L.SLASH; L.EQ; L.PLUSEQ ];
      check_toks "punctuation" "( ) [ ] { } , ;"
        [ L.LPAREN; L.RPAREN; L.LBRACKET; L.RBRACKET; L.LBRACE; L.RBRACE;
          L.COMMA; L.SEMI ];
      check_toks "directives" "#pragma #assign" [ L.KW_PRAGMA; L.KW_ASSIGN ];
      check_toks "access" "A[k][j][i+1]"
        [ L.IDENT "A"; L.LBRACKET; L.IDENT "k"; L.RBRACKET; L.LBRACKET;
          L.IDENT "j"; L.RBRACKET; L.LBRACKET; L.IDENT "i"; L.PLUS; L.INT 1;
          L.RBRACKET ];
      check_toks "line comment" "a // comment here\nb" [ L.IDENT "a"; L.IDENT "b" ];
      check_toks "block comment" "a /* multi\nline */ b" [ L.IDENT "a"; L.IDENT "b" ];
      check_toks "underscore idents" "_tmp my_var2" [ L.IDENT "_tmp"; L.IDENT "my_var2" ];
      case "line numbers advance" (fun () ->
          let t = L.tokenize "a\nb\n\nc" in
          let lines = List.filter_map (fun (tok, l) -> if tok = L.EOF then None else Some l) t in
          Alcotest.(check (list int)) "lines" [ 1; 2; 4 ] lines);
      case "unknown directive rejected" (fun () ->
          Alcotest.check_raises "raises" (L.Lex_error ("unknown directive #define", 1))
            (fun () -> ignore (L.tokenize "#define")));
      case "bad character rejected" (fun () ->
          match L.tokenize "a $ b" with
          | exception L.Lex_error (_, 1) -> ()
          | _ -> Alcotest.fail "expected Lex_error");
      case "unterminated comment rejected" (fun () ->
          match L.tokenize "/* never closed" with
          | exception L.Lex_error (_, _) -> ()
          | _ -> Alcotest.fail "expected Lex_error");
      case "keywords are not prefixes" (fun () ->
          Alcotest.(check bool) "stencils is ident" true
            (toks "stencils" = [ L.IDENT "stencils"; L.EOF ]));
    ] )
