(* Executor tests: every generated plan must produce the reference
   executor's values — bit-for-bit for plans that preserve evaluation
   order, within tolerance where retiming reassociates sums — across a
   matrix of schemes, block shapes, unrolls, perspectives, and staging
   choices, on every benchmark at test size. *)

open Artemis_dsl
module A = Ast
module I = Instantiate
module Plan = Artemis_ir.Plan
module E = Artemis_exec
module Suite = Artemis_bench.Suite

let case name f = Alcotest.test_case name `Quick f
let dev = Artemis_gpu.Device.p100

(* Run a program's schedule with [plan_of] configuring each kernel and
   compare every copyout array against the reference executor. *)
let compare_program ?(tol = 0.0) ?(margin = 0) (prog : A.program) ~plan_of =
  Check.check prog;
  let sched = I.schedule prog in
  let scalars = E.Reference.scalars_of_program prog in
  let ref_store = E.Reference.store_of_program prog in
  E.Reference.run_schedule ref_store ~scalars sched;
  let store = E.Reference.store_of_program prog in
  let steps = E.Runner.configure ~plan_of sched in
  let _counters = E.Runner.run_schedule steps store ~scalars in
  List.iter
    (fun name ->
      let a = E.Reference.find_array ref_store name in
      let b = E.Reference.find_array store name in
      let diff =
        if margin = 0 then E.Grid.max_abs_diff a b
        else E.Grid.max_abs_diff_interior ~margin a b
      in
      (* tolerance is relative to the data magnitude: iterated smoothers
         grow values by orders of magnitude, scaling rounding error *)
      let scale =
        Array.fold_left (fun m v -> Float.max m (Float.abs v)) 1.0 a.E.Grid.data
      in
      if diff > tol *. scale then
        Alcotest.failf "array %s differs by %g (tol %g x scale %g)" name diff tol
          scale)
    prog.copyout

(* Shrink the block shape until the plan is launchable (heavy kernels
   cannot run at every matrix shape) — mirroring what the tuner's validity
   filter does. *)
let plan_of_opts opts k =
  let p = Artemis_codegen.Lower.lower dev k opts in
  let rec shrink (p : Plan.t) tries =
    if tries = 0 then p
    else if Artemis_ir.Validate.is_valid p then p
    else begin
      let block = Array.copy p.block in
      (* halve the largest shrinkable extent *)
      let d = ref (-1) in
      Array.iteri (fun i e -> if e > 1 && (!d < 0 || e > block.(!d)) then d := i) block;
      if !d < 0 then p
      else begin
        block.(!d) <- max 1 (block.(!d) / 2);
        shrink { p with Plan.block } (tries - 1)
      end
    end
  in
  shrink p 12

(* The plan matrix every benchmark is executed under. *)
let plan_matrix =
  let module O = Artemis_codegen.Options in
  [
    ("global tiled", O.global_tiled);
    ("global tiled 8x8x8", { O.global_tiled with O.block = Some [| 8; 8; 8 |] });
    ("global stream", O.global_stream);
    ("shared stream", O.default);
    ("shared stream unroll j=2",
     { O.default with O.unroll = Some [| 1; 2; 1 |] });
    ("shared stream unroll i=2 cyclic",
     { O.default with O.unroll = Some [| 1; 1; 2 |]; distribution = Plan.Cyclic });
    ("shared tiled", { O.default with O.scheme = O.Force_tiled });
    ("concurrent stream", { O.default with O.scheme = O.Force_concurrent (None, 8) });
    ("prefetch", { O.default with O.prefetch = true });
    ("input perspective", { O.default with O.perspective = Plan.Input_persp });
    ("mixed perspective", { O.default with O.perspective = Plan.Mixed_persp });
    ("folding", { O.default with O.fold = true });
    ("no user assign", { O.default with O.honor_user_assign = false });
  ]

let bench_cases =
  List.concat_map
    (fun bname ->
      let b = Suite.at_size 12 (Suite.find bname) in
      List.map
        (fun (pname, opts) ->
          case
            (Printf.sprintf "%s / %s == reference" bname pname)
            (fun () -> compare_program b.prog ~plan_of:(plan_of_opts opts)))
        plan_matrix)
    [ "7pt-smoother"; "denoise"; "miniflux"; "rhs4center" ]

(* Retiming reassociates the sum (tolerance) and its decomposed guards
   differ per plane at domain faces (the real generated code computes
   partial sums there too), so compare on the deep interior: boundary
   effects propagate one cell per sweep over the 12 iterations. *)
let retime_cases =
  List.map
    (fun bname ->
      case (Printf.sprintf "%s / retimed ~= reference" bname) (fun () ->
          let b = Suite.at_size 34 (Suite.find bname) in
          let module O = Artemis_codegen.Options in
          compare_program ~tol:1e-9 ~margin:14 b.prog
            ~plan_of:(plan_of_opts { O.default with O.retime = true })))
    [ "27pt-smoother"; "7pt-smoother"; "addsgd4" ]

(* Spot checks of the remaining benchmarks under the default plan. *)
let default_cases =
  List.map
    (fun bname ->
      case (Printf.sprintf "%s / default == reference" bname) (fun () ->
          let b = Suite.at_size 12 (Suite.find bname) in
          compare_program b.prog
            ~plan_of:(plan_of_opts Artemis_codegen.Options.default)))
    [ "27pt-smoother"; "helmholtz"; "hypterm"; "diffterm"; "addsgd4"; "addsgd6";
      "rhs4sgcurv" ]

let tests =
  ( "exec",
    bench_cases @ retime_cases @ default_cases
    @ [
        case "grid pattern is deterministic" (fun () ->
            let a = E.Grid.create [| 4; 5; 6 |] in
            let b = E.Grid.create [| 4; 5; 6 |] in
            E.Grid.init_pattern ~seed:3 a;
            E.Grid.init_pattern ~seed:3 b;
            Alcotest.(check (float 0.0)) "equal" 0.0 (E.Grid.max_abs_diff a b));
        case "grid pattern differs across seeds" (fun () ->
            let a = E.Grid.create [| 8; 8; 8 |] in
            let b = E.Grid.create [| 8; 8; 8 |] in
            E.Grid.init_pattern ~seed:1 a;
            E.Grid.init_pattern ~seed:2 b;
            Alcotest.(check bool) "differ" true (E.Grid.max_abs_diff a b > 0.0));
        case "reference leaves boundary cells untouched" (fun () ->
            let b = Suite.at_size 10 (Suite.find "7pt-smoother") in
            let prog =
              { b.prog with A.main = [ A.Run (A.Apply ("jacobi7",
                  [ "out"; "in"; "h2inv"; "a"; "b" ])) ] }
            in
            let store = E.Reference.store_of_program prog in
            let before = E.Grid.copy (E.Reference.find_array store "out") in
            E.Reference.run_schedule store
              ~scalars:(E.Reference.scalars_of_program prog)
              (I.schedule prog);
            let after = E.Reference.find_array store "out" in
            (* corner cell is outside the interior *)
            Alcotest.(check (float 0.0)) "corner" (E.Grid.get before [| 0; 0; 0 |])
              (E.Grid.get after [| 0; 0; 0 |]);
            Alcotest.(check bool) "interior changed" true
              (E.Grid.get before [| 5; 5; 5 |] <> E.Grid.get after [| 5; 5; 5 |]));
        case "swap exchanges bindings" (fun () ->
            let store : E.Reference.store = Hashtbl.create 4 in
            let ga = E.Grid.create [| 2 |] and gb = E.Grid.create [| 2 |] in
            E.Grid.fill ga 1.0;
            E.Grid.fill gb 2.0;
            Hashtbl.replace store "a" ga;
            Hashtbl.replace store "b" gb;
            E.Reference.run_schedule store ~scalars:[] [ I.Exchange ("a", "b") ];
            Alcotest.(check (float 0.0)) "a is old b" 2.0
              (E.Grid.get (E.Reference.find_array store "a") [| 0 |]));
        case "executor rejects accumulate-first intermediates" (fun () ->
            let prog =
              Parser.parse_program
                {|parameter L=8; iterator k, j, i;
                  double u[L,L,L], g[L,L,L], o[L,L,L];
                  stencil s0 (O, G, U) {
                    G[k][j][i] += U[k][j][i];
                    O[k][j][i] = G[k][j][i+1];
                  }
                  s0 (o, g, u);|}
            in
            Check.check prog;
            let k =
              match I.schedule prog with
              | [ I.Launch k ] -> k
              | _ -> assert false
            in
            let p =
              { (Plan.default dev k) with
                Plan.scheme = Plan.Serial_stream 0; block = [| 1; 8; 8 |];
                placement = [ ("u", A.Shmem) ] }
            in
            let store = E.Reference.store_of_program prog in
            match E.Kernel_exec.run p store ~scalars:[] with
            | exception E.Kernel_exec.Unsupported _ -> ()
            | _ -> Alcotest.fail "expected Unsupported");
        case "analytic counters equal executed counters (7pt, stream)" (fun () ->
            let b = Suite.at_size 16 (Suite.find "7pt-smoother") in
            let k = List.hd (Suite.kernels b) in
            let p = Artemis_codegen.Lower.lower dev k Artemis_codegen.Options.default in
            let store = E.Reference.store_of_program b.prog in
            let executed =
              E.Kernel_exec.run p store ~scalars:(E.Reference.scalars_of_program b.prog)
            in
            let analytic = (E.Analytic.measure p).counters in
            Alcotest.(check bool) "equal"
              true
              (Artemis_gpu.Counters.approx_equal executed analytic));
        case "class summation equals exact block loop" (fun () ->
            let b = Suite.at_size 24 (Suite.find "rhs4center") in
            let k = List.hd (Suite.kernels b) in
            List.iter
              (fun opts ->
                let p = Artemis_codegen.Lower.lower dev k opts in
                let ctx = E.Traffic.make_ctx p in
                let fast = E.Traffic.total_counters ctx in
                let exact = E.Traffic.total_counters ~exact:true ctx in
                Alcotest.(check bool) "counters equal" true
                  (Artemis_gpu.Counters.approx_equal fast exact))
              [ Artemis_codegen.Options.default;
                Artemis_codegen.Options.global_tiled ]);
      ] )
